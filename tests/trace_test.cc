// Tests of the fastft::obs tracing layer: ring semantics, aggregation,
// Chrome-trace export, pool-worker attribution, and the engine integration
// (trace_path wiring + determinism cross-checks).

#include "common/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

// Every test stops tracing on exit so a failing assertion cannot leave the
// recorder armed for unrelated tests in this binary.
class TraceTest : public ::testing::Test {
 protected:
  ~TraceTest() override { obs::StopTracing(); }
};

int64_t CountSpans(const obs::TraceSnapshot& snapshot, const char* name) {
  int64_t count = 0;
  for (const obs::ThreadTrace& thread : snapshot.threads) {
    for (const obs::SpanEvent& event : thread.events) {
      if (std::string(event.name) == name) ++count;
    }
  }
  return count;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::TracingActive());
  const int64_t before = obs::SnapshotTrace().TotalEvents();
  { FASTFT_TRACE_SPAN("test/disabled"); }
  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  EXPECT_EQ(snapshot.TotalEvents(), before);
  EXPECT_EQ(CountSpans(snapshot, "test/disabled"), 0);
}

TEST_F(TraceTest, RecordsSpansWhileActive) {
  obs::StartTracing();
  { FASTFT_TRACE_SPAN("test/alpha"); }
  { FASTFT_TRACE_SPAN("test/alpha"); }
  { FASTFT_TRACE_SPAN("test/beta"); }
  obs::StopTracing();

  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  EXPECT_EQ(CountSpans(snapshot, "test/alpha"), 2);
  EXPECT_EQ(CountSpans(snapshot, "test/beta"), 1);
  // Frozen rings: nothing is recorded after StopTracing.
  { FASTFT_TRACE_SPAN("test/after_stop"); }
  EXPECT_EQ(CountSpans(obs::SnapshotTrace(), "test/after_stop"), 0);
}

TEST_F(TraceTest, StartClearsPreviousSession) {
  obs::StartTracing();
  { FASTFT_TRACE_SPAN("test/old"); }
  obs::StartTracing();  // restart: old spans must vanish
  { FASTFT_TRACE_SPAN("test/new"); }
  obs::StopTracing();
  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  EXPECT_EQ(CountSpans(snapshot, "test/old"), 0);
  EXPECT_EQ(CountSpans(snapshot, "test/new"), 1);
}

TEST_F(TraceTest, RingDropsOldestBeyondCapacity) {
  obs::TraceOptions options;
  options.ring_capacity = 4;
  obs::StartTracing(options);
  // Distinct names so retention order is observable.
  static const char* names[10] = {"t/0", "t/1", "t/2", "t/3", "t/4",
                                  "t/5", "t/6", "t/7", "t/8", "t/9"};
  for (int i = 0; i < 10; ++i) {
    obs::TraceSpan span(names[i]);
  }
  obs::StopTracing();

  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  const obs::ThreadTrace* mine = nullptr;
  for (const obs::ThreadTrace& thread : snapshot.threads) {
    if (!thread.events.empty()) mine = &thread;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_EQ(mine->events.size(), 4u);
  EXPECT_EQ(mine->dropped, 6);
  // Oldest-first order, only the newest four survive.
  EXPECT_STREQ(mine->events[0].name, "t/6");
  EXPECT_STREQ(mine->events[3].name, "t/9");
  for (size_t i = 1; i < mine->events.size(); ++i) {
    EXPECT_GE(mine->events[i].start_ns, mine->events[i - 1].start_ns);
  }
}

TEST_F(TraceTest, SummaryAggregatesAcrossSpans) {
  obs::StartTracing();
  for (int i = 0; i < 5; ++i) {
    FASTFT_TRACE_SPAN("test/summary");
  }
  obs::StopTracing();

  std::vector<obs::SpanStats> stats =
      obs::SummarizeSpans(obs::SnapshotTrace());
  const obs::SpanStats* found = nullptr;
  for (const obs::SpanStats& s : stats) {
    if (s.name == "test/summary") found = &s;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count, 5);
  EXPECT_GE(found->max_ns, 0u);
  EXPECT_GE(static_cast<double>(found->total_ns), found->MeanNs());
  int64_t by_thread_total = 0;
  for (const auto& [tid, count] : found->count_by_thread) {
    by_thread_total += count;
  }
  EXPECT_EQ(by_thread_total, found->count);
}

TEST_F(TraceTest, ChromeJsonHasRequiredStructure) {
  obs::StartTracing();
  { FASTFT_TRACE_SPAN("test/json_span"); }
  obs::StopTracing();

  std::string json = obs::ChromeTraceJson(obs::SnapshotTrace());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test/json_span"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"droppedSpans\""), std::string::npos);
  EXPECT_NE(json.find("\"spanSummary\""), std::string::npos);
}

TEST_F(TraceTest, DroppedSpansSectionReconcilesWithSnapshot) {
  obs::TraceOptions options;
  options.ring_capacity = 2;
  obs::StartTracing(options);
  for (int i = 0; i < 7; ++i) {
    FASTFT_TRACE_SPAN("test/overflow");
  }
  obs::StopTracing();

  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  EXPECT_EQ(snapshot.TotalDropped(), 5);

  // The exporter's droppedSpans object carries the same exact per-thread
  // counters the snapshot holds — sum its values and reconcile.
  std::string json = obs::ChromeTraceJson(snapshot);
  size_t begin = json.find("\"droppedSpans\": {");
  ASSERT_NE(begin, std::string::npos);
  begin += std::string("\"droppedSpans\": {").size();
  size_t end = json.find('}', begin);
  ASSERT_NE(end, std::string::npos);
  int64_t exported = 0;
  std::string body = json.substr(begin, end - begin);
  for (size_t pos = body.find(':'); pos != std::string::npos;
       pos = body.find(':', pos + 1)) {
    exported += std::strtoll(body.c_str() + pos + 1, nullptr, 10);
  }
  EXPECT_EQ(exported, snapshot.TotalDropped());
}

TEST_F(TraceTest, PoolWorkersAttributeSpansToNamedThreads) {
  obs::StartTracing();
  // A private pool guarantees real worker threads even on a single-core
  // host (the shared pool would have zero workers there).
  {
    common::ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.Submit([] {
        volatile double sink = 0.0;
        // Plain assignment: compound ops on volatile are deprecated in C++20.
        for (int k = 0; k < 1000; ++k) sink = sink + static_cast<double>(k);
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }
  obs::StopTracing();

  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  // Every Submit goes through the instrumented queue: 8 pool/task spans,
  // all recorded on threads registered as pool workers.
  int64_t pool_spans = 0;
  for (const obs::ThreadTrace& thread : snapshot.threads) {
    for (const obs::SpanEvent& event : thread.events) {
      if (std::string(event.name) != "pool/task") continue;
      ++pool_spans;
      EXPECT_EQ(thread.thread_name.rfind("pool-worker-", 0), 0u)
          << "pool/task span on thread '" << thread.thread_name << "'";
    }
  }
  EXPECT_EQ(pool_spans, 8);
}

TEST_F(TraceTest, EngineRunExportsTraceFile) {
  const std::string path = ::testing::TempDir() + "/fastft_engine_trace.json";
  std::remove(path.c_str());

  SyntheticSpec spec;
  spec.samples = 60;
  spec.features = 5;
  spec.seed = 5;
  Dataset dataset = MakeClassification(spec);
  EngineConfig config;
  config.episodes = 4;
  config.steps_per_episode = 4;
  config.cold_start_episodes = 2;
  config.seed = 17;
  config.trace_path = path;
  FastFtEngine engine(config);
  Result<EngineResult> run = engine.Run(dataset);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const EngineResult& result = run.value();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "engine did not write " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // The full stack shows up: every instrumented subsystem a default
  // single-threaded run exercises.
  for (const char* subsystem :
       {"engine/run", "engine/step", "evaluator/evaluate", "evaluator/fold",
        "forest/fit_tree", "replay/add", "predictor/predict",
        "novelty/estimate", "encode_cache/lookup"}) {
    EXPECT_NE(json.find(subsystem), std::string::npos)
        << "trace missing subsystem span " << subsystem;
  }

  // Determinism cross-check: span counts are exact functions of the run.
  obs::TraceSnapshot snapshot = obs::SnapshotTrace();
  EXPECT_EQ(CountSpans(snapshot, "engine/run"), 1);
  EXPECT_EQ(CountSpans(snapshot, "engine/step"), result.total_steps);
  EXPECT_EQ(CountSpans(snapshot, "engine/episode"), config.episodes);
  EXPECT_EQ(snapshot.TotalDropped(), 0);

  std::remove(path.c_str());
}

TEST_F(TraceTest, InvalidRingCapacityRejected) {
  EngineConfig config;
  config.trace_path = "unused.json";
  config.trace_ring_capacity = 0;
  EXPECT_FALSE(ValidateEngineConfig(config).ok());
  config.trace_ring_capacity = 1;
  EXPECT_TRUE(ValidateEngineConfig(config).ok());
  // Capacity is irrelevant when tracing is off.
  config.trace_path.clear();
  config.trace_ring_capacity = 0;
  EXPECT_TRUE(ValidateEngineConfig(config).ok());
}

}  // namespace
}  // namespace fastft
