// Determinism guarantees of the parallel evaluation pipeline: every score
// produced with num_threads > 1 must equal its serial counterpart bit for
// bit (per-fold/per-tree seeds are derived up front and reductions run in
// index order), and shared evaluator state must be race-free (this binary is
// the TSan regression suite for the pipeline — see tools/check_sanitize.sh).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/synthetic.h"
#include "ml/evaluator.h"

namespace fastft {
namespace {

Dataset Classification(int n = 220, uint64_t seed = 9) {
  SyntheticSpec spec;
  spec.samples = n;
  spec.features = 8;
  spec.seed = seed;
  return MakeClassification(spec);
}

EvaluatorConfig EvalConfig(int num_threads) {
  EvaluatorConfig ec;
  ec.seed = 77;
  ec.folds = 3;
  ec.forest_trees = 8;
  ec.num_threads = num_threads;
  return ec;
}

TEST(ParallelDeterminismTest, FoldParallelEvaluateIsBitIdentical) {
  Dataset ds = Classification();
  Evaluator serial(EvalConfig(1));
  Evaluator parallel(EvalConfig(4));
  // Exact comparison on purpose: the contract is bit-identity, not
  // tolerance-level agreement.
  EXPECT_EQ(serial.Evaluate(ds), parallel.Evaluate(ds));
}

TEST(ParallelDeterminismTest, TreeParallelForestIsBitIdentical) {
  Dataset ds = Classification();
  EvaluatorConfig serial_cfg = EvalConfig(1);
  EvaluatorConfig parallel_cfg = EvalConfig(1);
  parallel_cfg.forest_threads = 4;
  Evaluator serial(serial_cfg);
  Evaluator parallel(parallel_cfg);
  EXPECT_EQ(serial.Evaluate(ds), parallel.Evaluate(ds));
}

TEST(ParallelDeterminismTest, EvaluateBatchMatchesSerialLoop) {
  std::vector<Dataset> candidates;
  for (int i = 0; i < 8; ++i) {
    candidates.push_back(Classification(160, 100 + static_cast<uint64_t>(i)));
  }
  std::vector<const Dataset*> ptrs;
  for (const Dataset& d : candidates) ptrs.push_back(&d);

  Evaluator serial(EvalConfig(1));
  Evaluator parallel(EvalConfig(4));
  std::vector<double> expected;
  for (const Dataset* d : ptrs) expected.push_back(serial.Evaluate(*d));
  std::vector<double> batch = parallel.EvaluateBatch(ptrs);

  ASSERT_EQ(batch.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch[i], expected[i]) << "candidate " << i;
  }
  EXPECT_EQ(parallel.evaluation_count(), static_cast<int64_t>(ptrs.size()));
}

TEST(ParallelDeterminismTest, EngineRunIsBitIdenticalAcrossThreadCounts) {
  SyntheticSpec spec;
  spec.samples = 140;
  spec.features = 7;
  spec.seed = 50;
  Dataset ds = MakeClassification(spec);

  EngineConfig serial_cfg;
  serial_cfg.episodes = 5;
  serial_cfg.steps_per_episode = 4;
  serial_cfg.cold_start_episodes = 2;
  serial_cfg.finetune_every_episodes = 2;
  serial_cfg.cold_start_train_epochs = 4;
  serial_cfg.evaluator.folds = 2;
  serial_cfg.evaluator.forest_trees = 6;
  serial_cfg.seed = 2024;
  serial_cfg.num_threads = 1;
  EngineConfig parallel_cfg = serial_cfg;
  parallel_cfg.num_threads = 4;

  EngineResult a = FastFtEngine(serial_cfg).Run(ds).ValueOrDie();
  EngineResult b = FastFtEngine(parallel_cfg).Run(ds).ValueOrDie();

  EXPECT_EQ(a.base_score, b.base_score);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.downstream_evaluations, b.downstream_evaluations);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].reward, b.trace[i].reward) << "step " << i;
    EXPECT_EQ(a.trace[i].performance, b.trace[i].performance) << "step " << i;
  }
}

TEST(ParallelDeterminismTest, ObservabilityNeverChangesEngineOutputs) {
  // The tracing/metrics layer only reads clocks and bumps counters, so a
  // run with tracing + metrics on must be bit-identical to a run with both
  // off — at any thread count. Wall-clock fields (times, span durations)
  // are excluded by construction: the comparison covers scores and traces.
  SyntheticSpec spec;
  spec.samples = 120;
  spec.features = 6;
  spec.seed = 51;
  Dataset ds = MakeClassification(spec);

  EngineConfig base_cfg;
  base_cfg.episodes = 4;
  base_cfg.steps_per_episode = 4;
  base_cfg.cold_start_episodes = 2;
  base_cfg.evaluator.folds = 2;
  base_cfg.evaluator.forest_trees = 6;
  base_cfg.seed = 99;
  base_cfg.metrics = false;
  base_cfg.num_threads = 1;
  EngineResult plain = FastFtEngine(base_cfg).Run(ds).ValueOrDie();

  const std::string trace_path =
      ::testing::TempDir() + "/fastft_determinism_trace.json";
  for (int threads : {1, 4}) {
    EngineConfig obs_cfg = base_cfg;
    obs_cfg.num_threads = threads;
    obs_cfg.metrics = true;
    obs_cfg.trace_path = trace_path;
    EngineResult observed = FastFtEngine(obs_cfg).Run(ds).ValueOrDie();

    EXPECT_EQ(plain.base_score, observed.base_score) << threads;
    EXPECT_EQ(plain.best_score, observed.best_score) << threads;
    EXPECT_EQ(plain.downstream_evaluations, observed.downstream_evaluations)
        << threads;
    EXPECT_EQ(plain.total_steps, observed.total_steps) << threads;
    ASSERT_EQ(plain.trace.size(), observed.trace.size()) << threads;
    for (size_t i = 0; i < plain.trace.size(); ++i) {
      EXPECT_EQ(plain.trace[i].reward, observed.trace[i].reward)
          << threads << " step " << i;
      EXPECT_EQ(plain.trace[i].performance, observed.trace[i].performance)
          << threads << " step " << i;
      EXPECT_EQ(plain.trace[i].novelty, observed.trace[i].novelty)
          << threads << " step " << i;
    }
    // The snapshot delta is itself deterministic where it counts events.
    EXPECT_EQ(observed.metrics.CounterValue("engine.steps"),
              observed.total_steps)
        << threads;
    std::remove(trace_path.c_str());
  }
}

TEST(ParallelDeterminismTest, EvaluationCountIsRaceFreeUnderConcurrentUse) {
  // Regression for the `mutable int evaluation_count_` data race: hammer one
  // evaluator from several threads and check the atomic counter is exact.
  // Under FASTFT_SANITIZE=thread this also proves the const path is
  // race-free.
  Dataset ds = Classification(80);
  Evaluator evaluator(EvalConfig(1));
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&evaluator, &ds] {
      for (int i = 0; i < kCallsPerThread; ++i) evaluator.Evaluate(ds);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(evaluator.evaluation_count(), kThreads * kCallsPerThread);
}

}  // namespace
}  // namespace fastft
