// Tests for logistic regression, ridge, and linear SVM.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/linear_models.h"
#include "ml/metrics.h"

namespace fastft {
namespace {

// Linearly separable binary data: label = (2*x0 - x1 > 0).
void MakeLinear(int n, Rows* x, std::vector<double>* y, uint64_t seed = 2) {
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    double a = rng.Uniform(-1, 1);
    double b = rng.Uniform(-1, 1);
    x->push_back({a, b});
    y->push_back(2 * a - b > 0 ? 1.0 : 0.0);
  }
}

TEST(StandardizerTest, NormalizesTrainStats) {
  Rows x = {{0, 10}, {2, 20}, {4, 30}};
  Standardizer st;
  st.Fit(x);
  Rows z = st.ApplyAll(x);
  double mean0 = (z[0][0] + z[1][0] + z[2][0]) / 3;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
  EXPECT_NEAR(z[2][1], -z[0][1], 1e-12);  // symmetric around mean
}

TEST(StandardizerTest, ConstantColumnScaleOne) {
  Rows x = {{5}, {5}, {5}};
  Standardizer st;
  st.Fit(x);
  EXPECT_DOUBLE_EQ(st.Apply({5})[0], 0.0);
  EXPECT_DOUBLE_EQ(st.Apply({6})[0], 1.0);  // divided by fallback scale 1
}

TEST(LogisticTest, SeparableBinary) {
  Rows x;
  std::vector<double> y;
  MakeLinear(300, &x, &y);
  LogisticRegression lr;
  lr.Fit(x, y);
  EXPECT_GT(Accuracy(y, lr.Predict(x)), 0.95);
}

TEST(LogisticTest, ScoresMonotoneWithMargin) {
  Rows x;
  std::vector<double> y;
  MakeLinear(300, &x, &y);
  LogisticRegression lr;
  lr.Fit(x, y);
  // A deep positive point scores higher than a deep negative point.
  double pos = lr.PredictScore({{1.0, -1.0}})[0];
  double neg = lr.PredictScore({{-1.0, 1.0}})[0];
  EXPECT_GT(pos, 0.9);
  EXPECT_LT(neg, 0.1);
}

TEST(LogisticTest, ThreeClasses) {
  Rng rng(3);
  Rows x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    double a = rng.Uniform(0, 3);
    x.push_back({a, rng.Normal(0, 0.05)});
    y.push_back(std::floor(a));
  }
  LogisticRegression lr;
  lr.Fit(x, y);
  EXPECT_GT(Accuracy(y, lr.Predict(x)), 0.9);
}

TEST(RidgeSolverTest, SolvesKnownSystem) {
  // A = [[2,0],[0,4]] (+l2=0 handled by small epsilon), b = [2, 8] → w=[1,2].
  std::vector<std::vector<double>> a = {{2, 0}, {0, 4}};
  std::vector<double> w = SolveRidgeSystem(a, {2, 8}, 0.0);
  EXPECT_NEAR(w[0], 1.0, 1e-9);
  EXPECT_NEAR(w[1], 2.0, 1e-9);
}

TEST(RidgeSolverTest, RegularizationShrinks) {
  std::vector<std::vector<double>> a = {{1.0}};
  double w0 = SolveRidgeSystem(a, {1.0}, 0.0)[0];
  double w1 = SolveRidgeSystem(a, {1.0}, 1.0)[0];
  EXPECT_NEAR(w0, 1.0, 1e-9);
  EXPECT_NEAR(w1, 0.5, 1e-9);
}

TEST(RidgeTest, RecoverLinearRegression) {
  Rng rng(5);
  Rows x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(-1, 1);
    double b = rng.Uniform(-1, 1);
    x.push_back({a, b});
    y.push_back(3 * a - 2 * b + 0.5);
  }
  Ridge ridge(/*classification=*/false, {0.001});
  ridge.Fit(x, y);
  std::vector<double> pred = ridge.Predict(x);
  EXPECT_GT(OneMinusMse(y, pred), 0.99);
}

TEST(RidgeTest, ClassifierOnSeparable) {
  Rows x;
  std::vector<double> y;
  MakeLinear(300, &x, &y);
  Ridge ridge(/*classification=*/true);
  ridge.Fit(x, y);
  EXPECT_GT(Accuracy(y, ridge.Predict(x)), 0.9);
}

TEST(RidgeTest, ClassifierScoreRanksByClassOne) {
  Rows x;
  std::vector<double> y;
  MakeLinear(200, &x, &y);
  Ridge ridge(true);
  ridge.Fit(x, y);
  std::vector<double> scores = ridge.PredictScore(x);
  EXPECT_GT(AucFromScores(y, scores), 0.95);
}

TEST(SvmTest, SeparableBinary) {
  Rows x;
  std::vector<double> y;
  MakeLinear(300, &x, &y);
  LinearSvm svm;
  svm.Fit(x, y);
  EXPECT_GT(Accuracy(y, svm.Predict(x)), 0.95);
}

TEST(SvmTest, MarginSignMatchesClass) {
  Rows x;
  std::vector<double> y;
  MakeLinear(300, &x, &y);
  LinearSvm svm;
  svm.Fit(x, y);
  EXPECT_GT(svm.PredictScore({{1.0, -1.0}})[0], 0.0);
  EXPECT_LT(svm.PredictScore({{-1.0, 1.0}})[0], 0.0);
}

TEST(SvmTest, MulticlassOneVsRest) {
  Rng rng(6);
  Rows x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    int cls = rng.UniformInt(3);
    x.push_back({cls * 2.0 + rng.Normal(0, 0.2), rng.Normal(0, 0.2)});
    y.push_back(cls);
  }
  LinearSvm svm;
  svm.Fit(x, y);
  EXPECT_GT(Accuracy(y, svm.Predict(x)), 0.9);
}

}  // namespace
}  // namespace fastft
