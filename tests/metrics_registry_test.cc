// Tests of the fastft::obs metrics layer: counter/gauge/histogram
// semantics, registry identity, snapshot deltas, concurrent increments, and
// the JSON export shape.

#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace fastft {
namespace {

// Tests use a fresh local registry so the process-wide Global() — which the
// instrumented subsystems feed — stays out of the assertions.
TEST(MetricsRegistryTest, CounterIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter->Value(), 0);
  counter->Increment();
  counter->Increment(5);
  EXPECT_EQ(counter->Value(), 6);
}

TEST(MetricsRegistryTest, SameNameSamePointer) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h", {1.0, 2.0}),
            registry.GetHistogram("h", {9.0}));  // bounds fixed on first use
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
}

TEST(MetricsRegistryTest, GaugeKeepsLastValue) {
  obs::MetricsRegistry registry;
  obs::Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(3.5);
  gauge->Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge->Value(), -1.25);
}

TEST(MetricsRegistryTest, HistogramBucketsValues) {
  obs::Histogram histogram({10.0, 100.0, 1000.0});
  histogram.Observe(5.0);     // <= 10
  histogram.Observe(10.0);    // boundary lands in its own bucket
  histogram.Observe(50.0);    // <= 100
  histogram.Observe(5000.0);  // overflow
  obs::Histogram::Data data = histogram.Snapshot();
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2);
  EXPECT_EQ(data.counts[1], 1);
  EXPECT_EQ(data.counts[2], 0);
  EXPECT_EQ(data.counts[3], 1);
  EXPECT_EQ(data.count, 4);
  EXPECT_DOUBLE_EQ(data.sum, 5065.0);
  EXPECT_DOUBLE_EQ(data.max, 5000.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.concurrent");
  obs::Histogram* histogram =
      registry.GetHistogram("test.concurrent_us", {1.0, 10.0});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe(5.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  obs::Histogram::Data data = histogram->Snapshot();
  EXPECT_EQ(data.count, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(data.sum, 5.0 * kThreads * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotFindsByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.one")->Increment(7);
  registry.GetGauge("g.one")->Set(2.5);
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.CounterValue("c.one"), 7);
  EXPECT_EQ(snapshot.CounterValue("c.absent"), 0);
  const obs::MetricValue* gauge = snapshot.Find("g.one");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, obs::MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(gauge->gauge, 2.5);
}

TEST(MetricsRegistryTest, DeltaSubtractsAndDropsZeroes) {
  obs::MetricsRegistry registry;
  obs::Counter* active = registry.GetCounter("c.active");
  obs::Counter* idle = registry.GetCounter("c.idle");
  obs::Histogram* histogram = registry.GetHistogram("h.lat", {1.0});
  active->Increment(10);
  idle->Increment(3);
  histogram->Observe(0.5);
  obs::MetricsSnapshot start = registry.Snapshot();

  active->Increment(4);
  histogram->Observe(2.0);
  obs::MetricsSnapshot end = registry.Snapshot();

  obs::MetricsSnapshot delta = obs::DeltaSnapshot(start, end);
  EXPECT_EQ(delta.CounterValue("c.active"), 4);
  // Untouched between the snapshots: dropped from the delta entirely.
  EXPECT_EQ(delta.Find("c.idle"), nullptr);
  const obs::MetricValue* lat = delta.Find("h.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->histogram.count, 1);
  ASSERT_EQ(lat->histogram.counts.size(), 2u);
  EXPECT_EQ(lat->histogram.counts[0], 0);
  EXPECT_EQ(lat->histogram.counts[1], 1);  // only the new overflow observe
}

TEST(MetricsRegistryTest, MetricNewAfterStartPassesThroughDelta) {
  obs::MetricsRegistry registry;
  obs::MetricsSnapshot start = registry.Snapshot();
  registry.GetCounter("c.born_later")->Increment(9);
  obs::MetricsSnapshot delta =
      obs::DeltaSnapshot(start, registry.Snapshot());
  EXPECT_EQ(delta.CounterValue("c.born_later"), 9);
}

TEST(MetricsRegistryTest, ToJsonShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.n")->Increment(2);
  registry.GetGauge("g.v")->Set(1.5);
  registry.GetHistogram("h.us", {10.0})->Observe(3.0);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.n\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);

  obs::MetricsSnapshot empty;
  EXPECT_NE(empty.ToJson().find("\"counters\": {}"), std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsProcessWide) {
  obs::Counter* a = obs::MetricsRegistry::Global().GetCounter("test.global");
  obs::Counter* b = obs::MetricsRegistry::Global().GetCounter("test.global");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fastft
