// fixture-dest: src/nn/trig_fp_unordered.cc
// Compound FP accumulation driven by unordered-container iteration order
// must fire [fp-unordered-accumulate].
#include <unordered_map>

namespace fastft {

double TotalFixtureWeight(
    const std::unordered_map<int, double>& fixture_weights) {
  double total = 0.0;
  for (const auto& kv : fixture_weights) {
    total += kv.second;
  }
  return total;
}

}  // namespace fastft
