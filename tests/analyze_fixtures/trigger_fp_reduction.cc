// fixture-dest: src/core/trig_fp.cc
// std::accumulate outside src/common/simd_kernels* must fire
// [fp-reduction]: the algorithm owns the combination order.
#include <numeric>
#include <vector>

namespace fastft {

double SumFixture(const std::vector<double>& v) {
  double total = std::accumulate(v.begin(), v.end(), 0.0);
  return total;
}

}  // namespace fastft
