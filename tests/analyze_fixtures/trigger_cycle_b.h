// fixture-dest: src/core/cycle_b.h
// Second half of the include cycle (reported on cycle_a.h).
#pragma once
#include "core/cycle_a.h"
