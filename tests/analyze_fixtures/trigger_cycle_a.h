// fixture-dest: src/core/cycle_a.h
// Half of a two-header include cycle; the cycle is reported once, on the
// lexicographically-first member.
#pragma once
#include "core/cycle_b.h"
