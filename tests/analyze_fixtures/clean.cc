// fixture-dest: src/core/clean_analyze.cc
// Disciplined error handling: propagation macros, ok()-guarded value
// reads, index-order reductions. Fires nothing.
#include <vector>

#include "common/status.h"

namespace fastft {

Status PersistFixture();
Result<int> FetchFixtureCount();

Status CleanCaller() {
  FASTFT_RETURN_NOT_OK(PersistFixture());
  auto fetched = FetchFixtureCount();
  if (!fetched.ok()) return fetched.status();
  int count = fetched.value();
  FASTFT_ASSIGN_OR_RETURN(int other, FetchFixtureCount());
  double total = 0.0;
  std::vector<double> values(static_cast<size_t>(count + other), 1.0);
  for (size_t i = 0; i < values.size(); ++i) {
    total += values[i];
  }
  return total >= 0.0 ? Status::OK() : Status::Internal("negative total");
}

}  // namespace fastft
