// fixture-dest: src/core/stub_core.h
// Clean include target for the layer-violation fixtures; fires nothing.
#pragma once

namespace fastft {
struct FixtureCoreStub {};
}  // namespace fastft
