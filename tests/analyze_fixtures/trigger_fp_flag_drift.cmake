# fixture-dest: CMakeLists.txt
# -ffast-math (and the missing -ffp-contract=off) must fire
# [fp-flag-drift].
cmake_minimum_required(VERSION 3.16)
project(fixture LANGUAGES CXX)
add_compile_options(-ffast-math)
