// fixture-dest: src/core/trig_discard.cc
// A call that drops an indexed Status return as a bare expression
// statement must fire [discarded-status]. The declaration itself, the
// propagating macro form, and `return`-consumed calls must not.
#include "common/status.h"

namespace fastft {

Status FlushFixtureBuffer();

Status Propagates() {
  FASTFT_RETURN_NOT_OK(FlushFixtureBuffer());
  return Status::OK();
}

void Drops() {
  FlushFixtureBuffer();
}

}  // namespace fastft
