// fixture-dest: src/common/suppressed_layer.cc
// A layer-DAG violation silenced on the include line itself. Fires
// nothing.
#include "core/stub_core.h"  // fastft-analyze: allow(layer-violation): fixture demonstrates suppression

namespace fastft {
FixtureCoreStub MakeSuppressedStub() { return FixtureCoreStub{}; }
}  // namespace fastft
