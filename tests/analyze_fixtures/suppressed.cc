// fixture-dest: src/core/suppressed_analyze.cc
// Every code-level rule triggered once and silenced by a per-line
// `fastft-analyze: allow(<rule>): reason` suppression. Fires nothing.
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace fastft {

Status EmitFixture();
Result<int> GrabFixture();

double SuppressedAll(const std::vector<double>& v,
                     const std::unordered_map<int, double>& weight_map) {
  EmitFixture();  // fastft-analyze: allow(discarded-status): fixture demonstrates suppression
  auto grabbed = GrabFixture();
  int x = grabbed.value();  // fastft-analyze: allow(unchecked-value): fixture demonstrates suppression
  double total = std::accumulate(v.begin(), v.end(), 0.0);  // fastft-analyze: allow(fp-reduction): fixture demonstrates suppression
  for (const auto& kv : weight_map) {
    total += kv.second;  // fastft-analyze: allow(fp-unordered-accumulate): fixture demonstrates suppression
  }
  return total + x;
}

}  // namespace fastft
