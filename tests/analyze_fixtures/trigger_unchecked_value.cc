// fixture-dest: src/core/trig_unchecked.cc
// Reading .value() from a Result-typed variable with no dominating .ok()
// check must fire [unchecked-value].
#include "common/status.h"

namespace fastft {

Result<int> LoadFixtureCount();
int UseFixture(int v);

void Step() {
  auto count_or = LoadFixtureCount();
  UseFixture(count_or.value());
}

}  // namespace fastft
