// fixture-dest: src/common/trig_layer.cc
// common -> core inverts the documented layering and must fire
// [layer-violation] (no allowlist entry covers it).
#include "core/stub_core.h"

namespace fastft {
FixtureCoreStub MakeStubFromCommon() { return FixtureCoreStub{}; }
}  // namespace fastft
