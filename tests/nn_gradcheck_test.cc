// Finite-difference gradient checks for every backbone.
//
// The whole evaluation-component stack depends on hand-written backward
// passes; these tests verify each against central differences through the
// full SequenceModel loss 0.5*(f(tokens) - target)^2.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/sequence_model.h"

namespace fastft {
namespace nn {
namespace {

// Checks d(0.5 err^2)/dθ for a sample of parameter entries.
void GradCheck(SequenceModel* model, const std::vector<int>& tokens,
               double target, double tolerance) {
  // Analytic gradients.
  for (Parameter* p : model->Params()) p->ZeroGrad();
  model->TrainStep(tokens, target);

  std::vector<Parameter*> params = model->Params();
  Rng rng(99);
  const double h = 1e-6;  // small enough that ReLU-kink crossings are negligible
  int checked = 0;
  for (Parameter* p : params) {
    // Sample a few entries per tensor.
    int samples = std::min<int>(4, static_cast<int>(p->size()));
    for (int s = 0; s < samples; ++s) {
      size_t idx = static_cast<size_t>(rng.UniformInt(
          static_cast<int>(p->size())));
      double original = p->value.data()[idx];

      p->value.data()[idx] = original + h;
      double up = model->Forward(tokens) - target;
      p->value.data()[idx] = original - h;
      double down = model->Forward(tokens) - target;
      p->value.data()[idx] = original;

      double numeric = (0.5 * up * up - 0.5 * down * down) / (2 * h);
      double analytic = p->grad.data()[idx];
      // Mixed absolute/relative criterion: tiny gradients are dominated by
      // floating-point cancellation in the central difference.
      double bound = 1e-6 + tolerance *
                                std::max(std::abs(numeric),
                                         std::abs(analytic));
      EXPECT_LT(std::abs(numeric - analytic), bound)
          << "param entry " << idx << " numeric=" << numeric
          << " analytic=" << analytic;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

SequenceModelConfig TinyConfig(Backbone backbone, uint64_t seed) {
  SequenceModelConfig config;
  config.backbone = backbone;
  config.vocab_size = 12;
  config.embed_dim = 6;
  config.hidden_dim = 6;
  config.num_layers = 2;
  config.head_dims = {4, 1};
  config.seed = seed;
  return config;
}

TEST(GradCheckTest, Lstm) {
  SequenceModel model(TinyConfig(Backbone::kLstm, 31));
  GradCheck(&model, {1, 4, 7, 2, 9, 3}, 0.37, 2e-3);
}

TEST(GradCheckTest, Rnn) {
  SequenceModel model(TinyConfig(Backbone::kRnn, 33));
  GradCheck(&model, {2, 5, 8, 1}, -0.2, 2e-3);
}

TEST(GradCheckTest, Transformer) {
  SequenceModel model(TinyConfig(Backbone::kTransformer, 35));
  GradCheck(&model, {3, 6, 9, 0, 4}, 0.8, 2e-3);
}

TEST(GradCheckTest, SingleTokenSequence) {
  SequenceModel model(TinyConfig(Backbone::kLstm, 37));
  GradCheck(&model, {5}, 0.1, 2e-3);
}

TEST(GradCheckTest, RepeatedTokensShareEmbeddingGrads) {
  SequenceModel model(TinyConfig(Backbone::kLstm, 39));
  GradCheck(&model, {4, 4, 4, 4}, 0.5, 2e-3);
}

TEST(GradCheckTest, OrthogonalHeadStillDifferentiable) {
  SequenceModelConfig config = TinyConfig(Backbone::kLstm, 41);
  config.orthogonal_gain = 16.0;
  SequenceModel model(config);
  GradCheck(&model, {1, 2, 3}, 0.0, 2e-3);
}

}  // namespace
}  // namespace nn
}  // namespace fastft
