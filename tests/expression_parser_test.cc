// Tests for the expression parser and transformation programs.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "core/expression_parser.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

TEST(ParserTest, ParsesLeaf) {
  auto r = ParseExpression("f3");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsLeaf(r.value()));
  EXPECT_EQ(r.value()->feature, 3);
}

TEST(ParserTest, ParsesNamedLeaf) {
  auto r = ParseExpression("Weight", {"Age", "Weight"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->feature, 1);
}

TEST(ParserTest, LongestNameWins) {
  auto r = ParseExpression("AgeGroup", {"Age", "AgeGroup"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->feature, 1);
}

TEST(ParserTest, MultiDigitFeatureIndex) {
  auto r = ParseExpression("f12");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->feature, 12);
}

TEST(ParserTest, ParsesUnary) {
  auto r = ParseExpression("sqrt(f0)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->op, static_cast<int>(OpType::kSqrtAbs));
  EXPECT_EQ(r.value()->left->feature, 0);
}

TEST(ParserTest, ParsesBinary) {
  auto r = ParseExpression("(f0*f1)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->op, static_cast<int>(OpType::kMul));
}

TEST(ParserTest, ParsesNested) {
  auto r = ParseExpression("((f0+f1)/log(f2))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToString(r.value()), "((f0+f1)/log(f2))");
  EXPECT_EQ(r.value()->depth, 3);
}

TEST(ParserTest, ToleratesWhitespace) {
  auto r = ParseExpression("  ( f0 + f1 )  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToString(r.value()), "(f0+f1)");
}

TEST(ParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("(f0+f1").ok());       // missing ')'
  EXPECT_FALSE(ParseExpression("f0 f1").ok());        // trailing tokens
  EXPECT_FALSE(ParseExpression("sqrt(f0").ok());      // missing ')'
  EXPECT_FALSE(ParseExpression("(f0 f1)").ok());      // missing operator
  EXPECT_FALSE(ParseExpression("notafeature").ok());  // unknown leaf
  EXPECT_FALSE(ParseExpression("f").ok());            // no digits
}

// Property: ToString → Parse → ToString is the identity on random trees.
class RoundTripTest : public testing::TestWithParam<int> {};

ExprPtr RandomTree(int depth, Rng* rng) {
  if (depth <= 1 || rng->Bernoulli(0.3)) {
    return MakeLeaf(rng->UniformInt(20));
  }
  OpType op = OpFromIndex(rng->UniformInt(kNumOperations));
  if (IsUnary(op)) return MakeUnary(op, RandomTree(depth - 1, rng));
  return MakeBinary(op, RandomTree(depth - 1, rng),
                    RandomTree(depth - 1, rng));
}

TEST_P(RoundTripTest, ToStringParseIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    ExprPtr tree = RandomTree(5, &rng);
    std::string text = ExprToString(tree);
    auto parsed = ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(ExprToString(parsed.value()), text);
    EXPECT_EQ(ExprHash(parsed.value()), ExprHash(tree)) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, testing::Values(1, 2, 3, 4));

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.samples = 60;
  spec.features = 5;
  spec.seed = 44;
  return MakeClassification(spec);
}

TEST(ProgramTest, ApplyAddsNamedColumns) {
  TransformationProgram program(
      {MakeBinary(OpType::kMul, MakeLeaf(0), MakeLeaf(1)),
       MakeUnary(OpType::kSquare, MakeLeaf(2))});
  Dataset ds = SmallDataset();
  auto out = program.Apply(ds);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().NumFeatures(), ds.NumFeatures() + 2);
  EXPECT_EQ(out.value().features.Name(ds.NumFeatures()), "(f0*f1)");
  // Values match direct evaluation.
  for (int r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(out.value().features.At(r, ds.NumFeatures()),
                     ApplyBinary(OpType::kMul, ds.features.At(r, 0),
                                 ds.features.At(r, 1)));
  }
}

TEST(ProgramTest, ApplyRejectsOutOfRangeFeatures) {
  TransformationProgram program({MakeLeaf(99)});
  auto out = program.Apply(SmallDataset());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kOutOfRange);
}

TEST(ProgramTest, SerializeDeserializeRoundTrip) {
  TransformationProgram program(
      {MakeBinary(OpType::kDiv, MakeUnary(OpType::kLog1pAbs, MakeLeaf(3)),
                  MakeLeaf(1)),
       MakeLeaf(0)});
  auto loaded = TransformationProgram::Deserialize(program.Serialize());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2);
  EXPECT_EQ(ExprToString(loaded.value().expressions()[0]),
            ExprToString(program.expressions()[0]));
}

TEST(ProgramTest, DeserializeSkipsCommentsAndBlanks) {
  auto loaded = TransformationProgram::Deserialize(
      "# comment\n\n(f0+f1)\n   \nsquare(f2)\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2);
}

TEST(ProgramTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/fastft_program_test.txt";
  TransformationProgram program({MakeUnary(OpType::kTanh, MakeLeaf(2))});
  ASSERT_TRUE(program.SaveToFile(path).ok());
  auto loaded = TransformationProgram::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1);
  std::remove(path.c_str());
}

TEST(ProgramTest, FromTransformedDatasetTrainApplyParity) {
  // Train on one dataset, extract the program, apply to *new* rows from the
  // same schema, and verify the columns are computed identically.
  Dataset train = SmallDataset();
  std::vector<std::string> names;
  for (int c = 0; c < train.NumFeatures(); ++c) {
    names.push_back(train.features.Name(c));
  }
  // Simulate a transformed dataset with engine-style column names.
  Dataset transformed = train;
  std::vector<std::vector<double>> cols;
  for (int c = 0; c < train.NumFeatures(); ++c) {
    cols.push_back(train.features.Col(c));
  }
  ExprPtr expr = MakeBinary(OpType::kSub, MakeLeaf(4), MakeLeaf(2));
  ASSERT_TRUE(transformed.features
                  .AddColumn(ExprToString(expr, names), EvalExpr(expr, cols))
                  .ok());

  auto program = TransformationProgram::FromTransformedDataset(
      transformed, train.NumFeatures(), names);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().size(), 1);

  SyntheticSpec spec;
  spec.samples = 40;
  spec.features = 5;
  spec.seed = 45;  // fresh rows, same schema
  Dataset fresh = MakeClassification(spec);
  auto applied = program.value().Apply(fresh);
  ASSERT_TRUE(applied.ok());
  int new_col = fresh.NumFeatures();
  for (int r = 0; r < fresh.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(applied.value().features.At(r, new_col),
                     fresh.features.At(r, 4) - fresh.features.At(r, 2));
  }
}

TEST(ProgramTest, EmptyProgramIsIdentity) {
  TransformationProgram program;
  Dataset ds = SmallDataset();
  auto out = program.Apply(ds);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().NumFeatures(), ds.NumFeatures());
}

}  // namespace
}  // namespace fastft
