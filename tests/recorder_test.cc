// Tests of the fastft::obs flight recorder: ring semantics with exact
// dropped-event counters (including concurrent multi-thread emission), the
// versioned on-disk stream (round-trip, corruption rejection, resume
// truncation, crash-during-write atomicity), the engine integration
// (record_path wiring + recording-on/off bit-identity at 1 and 4 threads),
// and the recorder knobs of ValidateEngineConfig.

#include "common/recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/fs.h"
#include "core/engine.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

// Every test stops recording on exit so a failing assertion cannot leave
// the recorder armed for unrelated tests in this binary.
class RecorderTest : public ::testing::Test {
 protected:
  ~RecorderTest() override {
    obs::StopRecording();
    obs::DrainRecordedEvents();  // leave empty rings for the next test
  }
};

// NaN-aware double comparison: runner_up_score is NaN with < 2 candidates
// and must survive serialization bit-for-bit in spirit (NaN stays NaN).
void ExpectSameDouble(double expected, double actual, const char* field) {
  if (std::isnan(expected)) {
    EXPECT_TRUE(std::isnan(actual)) << field;
  } else {
    EXPECT_EQ(expected, actual) << field;
  }
}

void ExpectSameDecision(const obs::AgentDecision& expected,
                        const obs::AgentDecision& actual, const char* agent) {
  EXPECT_EQ(expected.action, actual.action) << agent;
  EXPECT_EQ(expected.candidates, actual.candidates) << agent;
  ExpectSameDouble(expected.chosen_score, actual.chosen_score, agent);
  ExpectSameDouble(expected.runner_up_score, actual.runner_up_score, agent);
}

void ExpectSameEvent(const obs::RecordEvent& expected,
                     const obs::RecordEvent& actual) {
  EXPECT_EQ(expected.kind, actual.kind);
  EXPECT_EQ(expected.episode, actual.episode);
  EXPECT_EQ(expected.step, actual.step);
  EXPECT_EQ(expected.global_step, actual.global_step);
  ExpectSameDecision(expected.head, actual.head, "head");
  ExpectSameDecision(expected.op, actual.op, "op");
  ExpectSameDecision(expected.tail, actual.tail, "tail");
  EXPECT_EQ(expected.epsilon, actual.epsilon);
  EXPECT_EQ(expected.novelty, actual.novelty);
  EXPECT_EQ(expected.predicted, actual.predicted);
  EXPECT_EQ(expected.performance, actual.performance);
  EXPECT_EQ(expected.reward, actual.reward);
  EXPECT_EQ(expected.reward_performance, actual.reward_performance);
  EXPECT_EQ(expected.reward_novelty, actual.reward_novelty);
  EXPECT_EQ(expected.novelty_weight, actual.novelty_weight);
  EXPECT_EQ(expected.downstream_evaluated, actual.downstream_evaluated);
  EXPECT_EQ(expected.generated, actual.generated);
  EXPECT_EQ(expected.priority_added, actual.priority_added);
  EXPECT_EQ(expected.priority_updated, actual.priority_updated);
  EXPECT_EQ(expected.replay_sampled, actual.replay_sampled);
  EXPECT_EQ(expected.replay_size, actual.replay_size);
  EXPECT_EQ(expected.site, actual.site);
  EXPECT_EQ(expected.detail, actual.detail);
  EXPECT_EQ(expected.best_score, actual.best_score);
}

obs::RecordEvent MakeDecisionEvent(int step) {
  obs::RecordEvent e;
  e.kind = obs::RecordEventKind::kDecision;
  e.episode = 1;
  e.step = step;
  e.global_step = 40 + step;
  e.head = {2, 5, 0.75, 0.5};
  e.op = {7, 12, -0.25, -0.5};
  e.tail = {-1, 0, 0.0, std::numeric_limits<double>::quiet_NaN()};
  e.epsilon = 0.35;
  e.novelty = 0.6;
  e.predicted = 0.71;
  e.performance = 0.72;
  e.reward = 0.05;
  e.reward_performance = 0.01;
  e.reward_novelty = 0.04;
  e.novelty_weight = 0.8;
  e.downstream_evaluated = true;
  e.generated = true;
  e.priority_added = 0.05;
  e.priority_updated = 0.002;
  e.replay_sampled = 3;
  e.replay_size = 17;
  e.detail = "(f1 add f2)";
  return e;
}

obs::RecordEvent MakeEpisodeEvent(int episode, double best_score) {
  obs::RecordEvent e;
  e.kind = obs::RecordEventKind::kEpisode;
  e.episode = episode;
  e.step = 4;
  e.best_score = best_score;
  e.replay_size = 9;
  return e;
}

TEST_F(RecorderTest, DisabledRecordsNothing) {
  ASSERT_FALSE(obs::RecordingActive());
  obs::Emit(MakeDecisionEvent(0));
  obs::DrainedEvents drained = obs::DrainRecordedEvents();
  EXPECT_TRUE(drained.events.empty());
  EXPECT_EQ(drained.TotalDropped(), 0);
}

TEST_F(RecorderTest, StopFreezesRings) {
  obs::StartRecording();
  obs::Emit(MakeDecisionEvent(0));
  obs::StopRecording();
  obs::Emit(MakeDecisionEvent(1));  // after stop: must not land
  obs::DrainedEvents drained = obs::DrainRecordedEvents();
  ASSERT_EQ(drained.events.size(), 1u);
  EXPECT_EQ(drained.events[0].step, 0);
}

TEST_F(RecorderTest, StreamRoundTripsEveryEventKind) {
  const std::string path = ::testing::TempDir() + "/fastft_roundtrip.ffr";
  std::remove(path.c_str());

  obs::RecordEvent fault;
  fault.kind = obs::RecordEventKind::kFault;
  fault.episode = 1;
  fault.step = 2;
  fault.global_step = 42;
  fault.site = "predictor/predict";
  fault.detail = "non-finite estimate dropped";

  obs::RecordEvent health;
  health.kind = obs::RecordEventKind::kHealth;
  health.episode = 1;
  health.step = 2;
  health.site = "health/quarantine";
  health.detail = "performance_predictor";

  std::vector<obs::RecordEvent> emitted = {MakeDecisionEvent(2), fault, health,
                                           MakeEpisodeEvent(1, 0.875)};
  obs::StartRecording();
  for (const obs::RecordEvent& e : emitted) obs::Emit(e);
  obs::StopRecording();
  obs::DrainedEvents drained = obs::DrainRecordedEvents();
  ASSERT_EQ(drained.events.size(), emitted.size());
  EXPECT_EQ(drained.TotalDropped(), 0);

  obs::RecordStream stream = obs::RecordStream::Open(path, 0);
  ASSERT_TRUE(stream.FlushEpisode(1, drained).ok());
  EXPECT_EQ(stream.episode_blocks(), 1);

  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().version, obs::kRecordStreamVersion);
  ASSERT_EQ(decoded.value().episodes, std::vector<int32_t>{1});
  ASSERT_EQ(decoded.value().events.size(), emitted.size());
  for (size_t i = 0; i < emitted.size(); ++i) {
    ExpectSameEvent(emitted[i], decoded.value().events[i]);
  }
  EXPECT_EQ(decoded.value().TotalDropped(), 0);
  std::remove(path.c_str());
}

TEST_F(RecorderTest, RingDropsOldestWithExactCounter) {
  obs::RecorderOptions options;
  options.ring_capacity = 4;
  obs::StartRecording(options);
  for (int i = 0; i < 10; ++i) obs::Emit(MakeDecisionEvent(i));
  obs::StopRecording();

  obs::DrainedEvents drained = obs::DrainRecordedEvents();
  ASSERT_EQ(drained.events.size(), 4u);
  // Oldest-first retention of the newest four.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(drained.events[i].step, 6 + i);
  ASSERT_EQ(drained.dropped_by_tid.size(), 1u);
  EXPECT_EQ(drained.dropped_by_tid.begin()->second, 6);
  EXPECT_EQ(drained.TotalDropped(), 6);

  // Drain reset the ring and its counter.
  obs::DrainedEvents again = obs::DrainRecordedEvents();
  EXPECT_TRUE(again.events.empty());
  EXPECT_EQ(again.TotalDropped(), 0);
}

TEST_F(RecorderTest, ConcurrentEmissionKeepsExactDroppedCounters) {
  constexpr int kThreads = 4;
  constexpr int kCapacity = 16;
  obs::RecorderOptions options;
  options.ring_capacity = kCapacity;
  obs::StartRecording(options);

  // Thread k emits 100+k events so every per-thread dropped total is
  // distinct: kept = 16, dropped = 84 + k.
  std::vector<std::thread> threads;
  for (int k = 0; k < kThreads; ++k) {
    threads.emplace_back([k] {
      for (int i = 0; i < 100 + k; ++i) {
        obs::RecordEvent e = MakeDecisionEvent(i);
        e.global_step = k;  // marks the emitting thread
        obs::Emit(e);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  obs::StopRecording();

  obs::DrainedEvents drained = obs::DrainRecordedEvents();
  ASSERT_EQ(drained.events.size(),
            static_cast<size_t>(kThreads * kCapacity));
  ASSERT_EQ(drained.dropped_by_tid.size(), static_cast<size_t>(kThreads));
  std::vector<int64_t> dropped;
  for (const auto& [tid, n] : drained.dropped_by_tid) dropped.push_back(n);
  std::sort(dropped.begin(), dropped.end());
  EXPECT_EQ(dropped, (std::vector<int64_t>{84, 85, 86, 87}));
  EXPECT_EQ(drained.TotalDropped(), 84 + 85 + 86 + 87);

  // Each thread's surviving window is exactly its newest kCapacity events,
  // oldest first.
  for (int k = 0; k < kThreads; ++k) {
    std::vector<int> steps;
    for (const obs::RecordEvent& e : drained.events) {
      if (e.global_step == k) steps.push_back(e.step);
    }
    ASSERT_EQ(steps.size(), static_cast<size_t>(kCapacity)) << "thread " << k;
    for (int i = 0; i < kCapacity; ++i) {
      EXPECT_EQ(steps[i], (100 + k) - kCapacity + i) << "thread " << k;
    }
  }

  // The decoded stream's droppedEvents section reconciles exactly with the
  // emission arithmetic above — the counters survive the disk round-trip.
  const std::string path = ::testing::TempDir() + "/fastft_dropped.ffr";
  std::remove(path.c_str());
  obs::RecordStream stream = obs::RecordStream::Open(path, 0);
  ASSERT_TRUE(stream.FlushEpisode(0, drained).ok());
  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().dropped_by_tid, drained.dropped_by_tid);
  EXPECT_EQ(decoded.value().TotalDropped(), drained.TotalDropped());
  std::remove(path.c_str());
}

TEST_F(RecorderTest, ResumeKeepsBlocksBeforeTheCursor) {
  const std::string path = ::testing::TempDir() + "/fastft_resume.ffr";
  std::remove(path.c_str());

  {
    obs::RecordStream stream = obs::RecordStream::Open(path, 0);
    for (int episode = 0; episode < 4; ++episode) {
      obs::DrainedEvents drained;
      drained.events.push_back(MakeEpisodeEvent(episode, 0.1 * episode));
      ASSERT_TRUE(stream.FlushEpisode(episode, drained).ok());
    }
    EXPECT_EQ(stream.episode_blocks(), 4);
  }

  // Resume at episode 2: blocks 0 and 1 survive, 2 and 3 (the interrupted
  // episode and anything stale after it) are dropped and re-flushed.
  obs::RecordStream resumed = obs::RecordStream::Open(path, 2);
  EXPECT_EQ(resumed.episode_blocks(), 2);
  obs::DrainedEvents replayed;
  replayed.events.push_back(MakeEpisodeEvent(2, 42.0));
  ASSERT_TRUE(resumed.FlushEpisode(2, replayed).ok());

  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().episodes, (std::vector<int32_t>{0, 1, 2}));
  ASSERT_EQ(decoded.value().events.size(), 3u);
  // Episode 2's block is the re-flushed one, not the pre-kill original.
  EXPECT_EQ(decoded.value().events[2].best_score, 42.0);

  // A fresh (non-resume) open discards the whole existing stream.
  obs::RecordStream fresh = obs::RecordStream::Open(path, 0);
  EXPECT_EQ(fresh.episode_blocks(), 0);
  obs::DrainedEvents first;
  first.events.push_back(MakeEpisodeEvent(0, 1.0));
  ASSERT_TRUE(fresh.FlushEpisode(0, first).ok());
  decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().episodes, std::vector<int32_t>{0});
  std::remove(path.c_str());
}

TEST_F(RecorderTest, UnreadableStreamIsDiscardedOnResume) {
  const std::string path = ::testing::TempDir() + "/fastft_garbage.ffr";
  ASSERT_TRUE(common::AtomicWriteFile(path, "this is not a record stream").ok());

  // Recording must never block a resume: the garbage is dropped silently
  // and the stream restarts from the resume cursor.
  obs::RecordStream stream = obs::RecordStream::Open(path, 3);
  EXPECT_EQ(stream.episode_blocks(), 0);
  obs::DrainedEvents drained;
  drained.events.push_back(MakeEpisodeEvent(3, 0.5));
  ASSERT_TRUE(stream.FlushEpisode(3, drained).ok());
  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().episodes, std::vector<int32_t>{3});
  std::remove(path.c_str());
}

TEST_F(RecorderTest, CorruptStreamsAreRejectedWithDiagnostics) {
  const std::string path = ::testing::TempDir() + "/fastft_corrupt.ffr";
  std::remove(path.c_str());
  EXPECT_FALSE(obs::ReadRecordStream(path).ok()) << "missing file";

  obs::RecordStream stream = obs::RecordStream::Open(path, 0);
  obs::DrainedEvents drained;
  drained.events.push_back(MakeDecisionEvent(0));
  ASSERT_TRUE(stream.FlushEpisode(0, drained).ok());
  std::string valid;
  ASSERT_TRUE(common::ReadFileToString(path, &valid).ok());
  ASSERT_TRUE(obs::ReadRecordStream(path).ok());

  auto expect_rejected = [&](std::string bytes, const std::string& needle,
                             const char* label) {
    ASSERT_TRUE(common::AtomicWriteFile(path, bytes).ok());
    Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
    ASSERT_FALSE(decoded.ok()) << label;
    EXPECT_NE(decoded.status().message().find(needle), std::string::npos)
        << label << ": " << decoded.status().ToString();
  };

  std::string bad_magic = valid;
  bad_magic[0] ^= 0x5A;
  expect_rejected(bad_magic, "bad magic", "flipped magic byte");

  std::string bad_version = valid;
  bad_version[4] = 0x63;
  expect_rejected(bad_version, "version", "unknown version");

  std::string bad_crc = valid;
  bad_crc[bad_crc.size() / 2] ^= 0x5A;  // inside the block payload
  expect_rejected(bad_crc, "CRC mismatch", "flipped payload byte");

  expect_rejected(valid.substr(0, valid.size() - 3), "truncated",
                  "truncated block");

  // Atomic writes make partial blocks unreachable in practice, but the
  // decoder still refuses a header-only torn block.
  expect_rejected(valid.substr(0, 10), "corrupt block header",
                  "torn block header");
  std::remove(path.c_str());
}

TEST_F(RecorderTest, CrashDuringFlushLeavesPreviousEpisodesIntact) {
  // Threadsafe style re-executes the binary for the death statement, so the
  // fork is safe even with pool workers alive from earlier tests.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = ::testing::TempDir() + "/fastft_crash.ffr";
  std::remove(path.c_str());

  obs::RecordStream stream = obs::RecordStream::Open(path, 0);
  obs::DrainedEvents episode0;
  episode0.events.push_back(MakeEpisodeEvent(0, 0.25));
  ASSERT_TRUE(stream.FlushEpisode(0, episode0).ok());
  std::string before;
  ASSERT_TRUE(common::ReadFileToString(path, &before).ok());

  // The child dies at the fs/atomic_write kill site: its temp file is
  // complete but the rename never happens (KillMode::kExit == _Exit(137)).
  EXPECT_EXIT(
      {
        FaultInjector::ArmKill({{"fs/atomic_write", 0}}, KillMode::kExit);
        obs::RecordStream resumed = obs::RecordStream::Open(path, 1);
        obs::DrainedEvents episode1;
        episode1.events.push_back(MakeEpisodeEvent(1, 0.5));
        (void)resumed.FlushEpisode(1, episode1);
      },
      ::testing::ExitedWithCode(137), "");

  // The pre-crash stream is byte-identical and still decodes to exactly
  // the episodes flushed before the kill.
  std::string after;
  ASSERT_TRUE(common::ReadFileToString(path, &after).ok());
  EXPECT_EQ(after, before);
  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().episodes, std::vector<int32_t>{0});
  std::remove(path.c_str());
}

TEST_F(RecorderTest, EngineRecordingIsBitIdenticalOnOffAndAcrossThreads) {
  SyntheticSpec spec;
  spec.samples = 60;
  spec.features = 5;
  spec.seed = 5;
  Dataset dataset = MakeClassification(spec);

  EngineConfig config;
  config.episodes = 4;
  config.steps_per_episode = 4;
  config.cold_start_episodes = 2;
  config.seed = 17;

  auto run_once = [&](const std::string& record_path, int num_threads) {
    EngineConfig c = config;
    c.record_path = record_path;
    c.num_threads = num_threads;
    FastFtEngine engine(c);
    Result<EngineResult> run = engine.Run(dataset);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(run).ValueOrDie();
  };

  const std::string path1 = ::testing::TempDir() + "/fastft_rec_t1.ffr";
  const std::string path4 = ::testing::TempDir() + "/fastft_rec_t4.ffr";
  std::remove(path1.c_str());
  std::remove(path4.c_str());

  EngineResult off = run_once("", 1);
  EngineResult on1 = run_once(path1, 1);
  EngineResult on4 = run_once(path4, 4);

  // Recording never steers: scores and traces are exact across recording
  // on/off and thread counts.
  for (const EngineResult* other : {&on1, &on4}) {
    EXPECT_EQ(off.base_score, other->base_score);
    EXPECT_EQ(off.best_score, other->best_score);
    EXPECT_EQ(off.episode_best, other->episode_best);
    EXPECT_EQ(off.total_steps, other->total_steps);
    ASSERT_EQ(off.trace.size(), other->trace.size());
    for (size_t i = 0; i < off.trace.size(); ++i) {
      EXPECT_EQ(off.trace[i].reward, other->trace[i].reward);
      EXPECT_EQ(off.trace[i].performance, other->trace[i].performance);
      EXPECT_EQ(off.trace[i].novelty, other->trace[i].novelty);
    }
  }
  EXPECT_EQ(off.recorded_events, 0);
  EXPECT_GT(on1.recorded_events, 0);
  EXPECT_EQ(on1.recorded_dropped, 0);
  EXPECT_EQ(on1.recorded_events, on4.recorded_events);

  // The streams themselves are byte-identical at 1 and 4 threads.
  std::string stream1, stream4;
  ASSERT_TRUE(common::ReadFileToString(path1, &stream1).ok());
  ASSERT_TRUE(common::ReadFileToString(path4, &stream4).ok());
  EXPECT_EQ(stream1, stream4);

  // The decoded stream is an exact function of the run: one decision per
  // step, one boundary mark per episode, nothing dropped.
  Result<obs::DecodedRecordStream> decoded = obs::ReadRecordStream(path1);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().episodes.size(),
            static_cast<size_t>(config.episodes));
  int64_t decisions = 0, episode_marks = 0;
  for (const obs::RecordEvent& e : decoded.value().events) {
    if (e.kind == obs::RecordEventKind::kDecision) ++decisions;
    if (e.kind == obs::RecordEventKind::kEpisode) ++episode_marks;
  }
  EXPECT_EQ(decisions, off.total_steps);
  EXPECT_EQ(episode_marks, config.episodes);
  EXPECT_EQ(decoded.value().TotalDropped(), 0);
  EXPECT_EQ(static_cast<int64_t>(decoded.value().events.size()),
            on1.recorded_events);

  // Decision provenance is populated, not defaulted: every head selection
  // saw the full candidate set and the reward decomposition adds up.
  for (const obs::RecordEvent& e : decoded.value().events) {
    if (e.kind != obs::RecordEventKind::kDecision) continue;
    EXPECT_GT(e.head.candidates, 0);
    EXPECT_GE(e.head.action, 0);
    EXPECT_LT(e.head.action, e.head.candidates);
    EXPECT_NEAR(e.reward, e.reward_performance + e.reward_novelty, 1e-12);
  }

  std::remove(path1.c_str());
  std::remove(path4.c_str());
}

TEST_F(RecorderTest, ValidateEngineConfigChecksRecorderKnobs) {
  EngineConfig config;
  config.record_path = "run.ffr";
  ASSERT_TRUE(ValidateEngineConfig(config).ok());

  // A directory is not a stream file.
  config.record_path = "runs/";
  Status dir = ValidateEngineConfig(config);
  ASSERT_FALSE(dir.ok());
  EXPECT_NE(dir.message().find("record_path"), std::string::npos);

  // Non-positive ring capacity is rejected while recording...
  config.record_path = "run.ffr";
  for (int capacity : {0, -16384}) {
    config.record_ring_capacity = capacity;
    Status bad = ValidateEngineConfig(config);
    ASSERT_FALSE(bad.ok()) << capacity;
    EXPECT_NE(bad.message().find("record_ring_capacity"), std::string::npos);
  }
  config.record_ring_capacity = 1;
  EXPECT_TRUE(ValidateEngineConfig(config).ok());

  // ...but irrelevant when recording is off.
  config.record_path.clear();
  config.record_ring_capacity = 0;
  EXPECT_TRUE(ValidateEngineConfig(config).ok());
}

}  // namespace
}  // namespace fastft
