// Tests for the evaluation metrics.

#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace fastft {
namespace {

TEST(MetricsTest, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {0, 1, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 1, 0}, {1, 0, 0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 1}, {0, 0}), 0.5);
}

TEST(MetricsTest, F1PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(F1Macro({0, 1, 0, 1}, {0, 1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(F1Macro({0, 0, 1, 1}, {1, 1, 0, 0}), 0.0);
}

TEST(MetricsTest, F1KnownValue) {
  // Class 0: tp=1 fp=1 fn=1 → p=r=0.5, f1=0.5.
  // Class 1: tp=1 fp=1 fn=1 → f1=0.5. Macro = 0.5.
  EXPECT_NEAR(F1Macro({0, 0, 1, 1}, {0, 1, 0, 1}), 0.5, 1e-12);
}

TEST(MetricsTest, PrecisionRecallAsymmetry) {
  // truth: one positive; prediction marks everything positive.
  std::vector<double> truth = {0, 0, 0, 1};
  std::vector<double> pred = {1, 1, 1, 1};
  // Class 1: precision 0.25, recall 1.0.
  EXPECT_NEAR(PrecisionMacro(truth, pred), 0.125, 1e-12);  // class0 p=0
  EXPECT_NEAR(RecallMacro(truth, pred), 0.5, 1e-12);       // class0 r=0
}

TEST(MetricsTest, MacroAveragingOverThreeClasses) {
  std::vector<double> truth = {0, 1, 2, 0, 1, 2};
  std::vector<double> pred = {0, 1, 2, 0, 1, 1};
  double f1 = F1Macro(truth, pred);
  EXPECT_GT(f1, 0.7);
  EXPECT_LT(f1, 1.0);
}

TEST(MetricsTest, AucPerfectSeparation) {
  EXPECT_DOUBLE_EQ(AucFromScores({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(AucFromScores({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, AucRandomIsHalf) {
  EXPECT_DOUBLE_EQ(AucFromScores({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(MetricsTest, AucTiesUseMidrank) {
  // scores: pos {0.5, 0.9}, neg {0.5, 0.1}: one tie pair counts 1/2.
  double auc = AucFromScores({0, 1, 0, 1}, {0.5, 0.5, 0.1, 0.9});
  EXPECT_NEAR(auc, (1.0 + 0.5 + 1.0 + 1.0) / 4.0, 1e-12);
}

TEST(MetricsTest, AucDegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(AucFromScores({1, 1, 1}, {0.1, 0.2, 0.3}), 0.5);
}

TEST(MetricsTest, OneMinusRaePerfect) {
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(OneMinusRae(y, y), 1.0);
}

TEST(MetricsTest, OneMinusRaeMeanPredictorIsZero) {
  std::vector<double> y = {1, 2, 3, 4};
  std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(OneMinusRae(y, mean_pred), 0.0, 1e-12);
}

TEST(MetricsTest, OneMinusRaeClippedAtZero) {
  std::vector<double> y = {1, 2, 3, 4};
  std::vector<double> awful = {100, -100, 100, -100};
  EXPECT_DOUBLE_EQ(OneMinusRae(y, awful), 0.0);
}

TEST(MetricsTest, OneMinusMaeAndMse) {
  std::vector<double> y = {0, 0};
  std::vector<double> p = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(OneMinusMae(y, p), 0.5);
  EXPECT_DOUBLE_EQ(OneMinusMse(y, p), 0.75);
}

TEST(MetricsTest, DefaultMetricPerTask) {
  EXPECT_EQ(DefaultMetric(TaskType::kClassification), Metric::kF1Macro);
  EXPECT_EQ(DefaultMetric(TaskType::kRegression), Metric::kOneMinusRae);
  EXPECT_EQ(DefaultMetric(TaskType::kDetection), Metric::kAuc);
}

TEST(MetricsTest, ComputeMetricDispatch) {
  std::vector<double> truth = {0, 1};
  std::vector<double> pred = {0, 1};
  EXPECT_DOUBLE_EQ(ComputeMetric(Metric::kAccuracy, truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(ComputeMetric(Metric::kF1Macro, truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(ComputeMetric(Metric::kAuc, truth, {0.2, 0.9}), 1.0);
}

TEST(MetricsTest, NamesAreStable) {
  EXPECT_STREQ(MetricName(Metric::kF1Macro), "F1");
  EXPECT_STREQ(MetricName(Metric::kOneMinusRae), "1-RAE");
  EXPECT_STREQ(MetricName(Metric::kAuc), "AUC");
}

class MetricRangeTest : public testing::TestWithParam<Metric> {};

TEST_P(MetricRangeTest, AlwaysInUnitInterval) {
  // Property: every metric stays in [0,1] for arbitrary label/pred pairs.
  std::vector<std::pair<std::vector<double>, std::vector<double>>> cases = {
      {{0, 1, 1, 0, 1}, {1, 1, 0, 0, 1}},
      {{0, 0, 0, 1, 1}, {0, 1, 0, 1, 0}},
      {{1, 0, 1, 0, 1}, {0.3, 0.6, 0.2, 0.9, 0.5}},
  };
  for (const auto& [truth, pred] : cases) {
    double v = ComputeMetric(GetParam(), truth, pred);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricRangeTest,
    testing::Values(Metric::kF1Macro, Metric::kPrecisionMacro,
                    Metric::kRecallMacro, Metric::kAccuracy, Metric::kAuc,
                    Metric::kOneMinusRae, Metric::kOneMinusMae,
                    Metric::kOneMinusMse));

}  // namespace
}  // namespace fastft
