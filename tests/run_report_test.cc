// Tests for the JSON run-report writer.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <limits>
#include <fstream>
#include <string>

#include "core/run_report.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

EngineResult QuickRun(const Dataset& dataset) {
  EngineConfig cfg;
  cfg.episodes = 3;
  cfg.steps_per_episode = 3;
  cfg.cold_start_episodes = 1;
  cfg.evaluator.folds = 2;
  cfg.seed = 77;
  return FastFtEngine(cfg).Run(dataset).ValueOrDie();
}

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.samples = 80;
  spec.features = 5;
  spec.seed = 31;
  Dataset ds = MakeClassification(spec);
  ds.name = "report \"test\"";  // exercises escaping
  return ds;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonEscapeTest, EdgeCases) {
  EXPECT_EQ(JsonEscape(""), "");
  EXPECT_EQ(JsonEscape("\t\r\n"), "\\t\\r\\n");
  EXPECT_EQ(JsonEscape("\"\"\""), "\\\"\\\"\\\"");
  // Multi-byte UTF-8 passes through unmangled: every byte of a multi-byte
  // sequence is >= 0x80, so none hits the control-character escape.
  const std::string utf8 = "caf\xC3\xA9 \xE6\xBC\xA2";  // "café 漢"
  EXPECT_EQ(JsonEscape(utf8), utf8);
  // Mixed: controls escaped, UTF-8 intact, in one pass.
  EXPECT_EQ(JsonEscape(std::string("\x1F") + "\xC3\xA9"),
            std::string("\\u001f") + "\xC3\xA9");
}

TEST(RunReportTest, ContainsCoreFields) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  EXPECT_NE(json.find("\"dataset\": \"report \\\"test\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"task\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"base_score\":"), std::string::npos);
  EXPECT_NE(json.find("\"best_score\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"generated_features\":"), std::string::npos);
  EXPECT_NE(json.find("\"times\":"), std::string::npos);
}

TEST(RunReportTest, BalancedBracesAndQuotes) {
  // Structural sanity without a JSON parser: balanced {} and [] and an even
  // number of unescaped quotes.
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  int braces = 0, brackets = 0, quotes = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

TEST(RunReportTest, TraceLengthMatchesSteps) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  size_t count = 0, pos = 0;
  while ((pos = json.find("\"episode\":", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, r.trace.size());
}

TEST(RunReportTest, NoNanOrInfLiterals) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  r.base_score = std::numeric_limits<double>::quiet_NaN();
  std::string json = RunReportJson(ds, r);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"base_score\": null"), std::string::npos);
}

TEST(RunReportTest, ContainsHealthSection) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  EXPECT_NE(json.find("\"health\":"), std::string::npos);
  EXPECT_NE(json.find("\"faults_observed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"performance_predictor\""), std::string::npos);
  EXPECT_NE(json.find("\"novelty_estimator\""), std::string::npos);
  // A clean run reports both components healthy.
  EXPECT_EQ(json.find("quarantined"), std::string::npos);
}

TEST(RunReportTest, ContainsMetricsSection) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  ASSERT_FALSE(r.metrics.empty());
  std::string json = RunReportJson(ds, r);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":"), std::string::npos);
  // Engine counters in the delta agree with the legacy result fields.
  EXPECT_EQ(r.metrics.CounterValue("engine.steps"), r.total_steps);
  EXPECT_EQ(r.metrics.CounterValue("engine.downstream_evaluations"),
            r.downstream_evaluations);
  EXPECT_NE(json.find("\"engine.steps\": " + std::to_string(r.total_steps)),
            std::string::npos);
}

TEST(RunReportTest, MetricsOffKeepsLegacyShape) {
  Dataset ds = SmallDataset();
  EngineConfig cfg;
  cfg.episodes = 3;
  cfg.steps_per_episode = 3;
  cfg.cold_start_episodes = 1;
  cfg.evaluator.folds = 2;
  cfg.seed = 77;
  cfg.metrics = false;
  EngineResult r = FastFtEngine(cfg).Run(ds).ValueOrDie();
  EXPECT_TRUE(r.metrics.empty());
  std::string json = RunReportJson(ds, r);
  EXPECT_EQ(json.find("\"metrics\":"), std::string::npos);
}

// Minimal recursive-descent JSON validator: enough grammar to prove the
// report parses (objects, arrays, strings with escapes, numbers, literals).
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      default:
        return Literal() || Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) return true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Expect(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek('}')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) return true;
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(']')) return true;
      if (!Expect(',')) return false;
    }
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (static_cast<unsigned char>(text_[pos_]) < 0x20) return false;
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return Expect('"');
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal() {
    for (const char* lit : {"true", "false", "null"}) {
      size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) == 0) {
        pos_ += n;
        return true;
      }
    }
    return false;
  }
  bool Expect(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(RunReportTest, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator(R"({"a": [1, -2.5e3, "x\n", true, null]})")
                  .Valid());
  EXPECT_FALSE(JsonValidator(R"({"a": })").Valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1)").Valid());
  EXPECT_FALSE(JsonValidator("{\"a\": \"\x01\"}").Valid());
  EXPECT_FALSE(JsonValidator(R"({"a": 1} trailing)").Valid());
}

TEST(RunReportTest, FullReportParses) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  EXPECT_TRUE(JsonValidator(json).Valid());
}

TEST(RunReportTest, FileWrite) {
  std::string path = testing::TempDir() + "/fastft_report.json";
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  ASSERT_TRUE(WriteRunReport(ds, r, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "{");
  std::remove(path.c_str());
}

TEST(RunReportTest, WriteToBadPathFails) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  EXPECT_EQ(WriteRunReport(ds, r, "/no/such/dir/report.json").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace fastft
