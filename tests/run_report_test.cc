// Tests for the JSON run-report writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <fstream>

#include "core/run_report.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

EngineResult QuickRun(const Dataset& dataset) {
  EngineConfig cfg;
  cfg.episodes = 3;
  cfg.steps_per_episode = 3;
  cfg.cold_start_episodes = 1;
  cfg.evaluator.folds = 2;
  cfg.seed = 77;
  return FastFtEngine(cfg).Run(dataset).ValueOrDie();
}

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.samples = 80;
  spec.features = 5;
  spec.seed = 31;
  Dataset ds = MakeClassification(spec);
  ds.name = "report \"test\"";  // exercises escaping
  return ds;
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(RunReportTest, ContainsCoreFields) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  EXPECT_NE(json.find("\"dataset\": \"report \\\"test\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"task\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"base_score\":"), std::string::npos);
  EXPECT_NE(json.find("\"best_score\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"generated_features\":"), std::string::npos);
  EXPECT_NE(json.find("\"times\":"), std::string::npos);
}

TEST(RunReportTest, BalancedBracesAndQuotes) {
  // Structural sanity without a JSON parser: balanced {} and [] and an even
  // number of unescaped quotes.
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  int braces = 0, brackets = 0, quotes = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

TEST(RunReportTest, TraceLengthMatchesSteps) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  size_t count = 0, pos = 0;
  while ((pos = json.find("\"episode\":", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, r.trace.size());
}

TEST(RunReportTest, NoNanOrInfLiterals) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  r.base_score = std::numeric_limits<double>::quiet_NaN();
  std::string json = RunReportJson(ds, r);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("\"base_score\": null"), std::string::npos);
}

TEST(RunReportTest, ContainsHealthSection) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  std::string json = RunReportJson(ds, r);
  EXPECT_NE(json.find("\"health\":"), std::string::npos);
  EXPECT_NE(json.find("\"faults_observed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"performance_predictor\""), std::string::npos);
  EXPECT_NE(json.find("\"novelty_estimator\""), std::string::npos);
  // A clean run reports both components healthy.
  EXPECT_EQ(json.find("quarantined"), std::string::npos);
}

TEST(RunReportTest, FileWrite) {
  std::string path = testing::TempDir() + "/fastft_report.json";
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  ASSERT_TRUE(WriteRunReport(ds, r, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "{");
  std::remove(path.c_str());
}

TEST(RunReportTest, WriteToBadPathFails) {
  Dataset ds = SmallDataset();
  EngineResult r = QuickRun(ds);
  EXPECT_EQ(WriteRunReport(ds, r, "/no/such/dir/report.json").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace fastft
