// Estimation hot-path tests: inference/training bit-identity, prefix-cache
// equivalence, batched scoring determinism, and full-engine invariance to
// thread count and cache size.
//
// Every comparison is exact `==` on doubles — the acceleration layers
// (incremental encoding, batched fan-out, blocked kernels) are required to
// reproduce the serial from-scratch arithmetic bit for bit.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "core/novelty_estimator.h"
#include "core/performance_predictor.h"
#include "data/synthetic.h"
#include "nn/sequence_model.h"

namespace fastft {
namespace {

// Token sequences shaped like the tokenizer's output: BOS ... EOS with the
// trailing EOS replaced on every extension (the engine's append pattern).
std::vector<std::vector<int>> GrowingSequences(int count, int vocab,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> sequences;
  std::vector<int> body = {1};  // BOS
  for (int i = 0; i < count; ++i) {
    body.push_back(3 + static_cast<int>(rng.Uniform() * (vocab - 4)));
    std::vector<int> seq = body;
    seq.push_back(2);  // EOS
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

std::vector<std::vector<int>> IndependentSequences(int count, int vocab,
                                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int>> sequences;
  for (int i = 0; i < count; ++i) {
    std::vector<int> seq = {1};
    int len = 3 + static_cast<int>(rng.Uniform() * 20);
    for (int j = 0; j < len; ++j) {
      seq.push_back(3 + static_cast<int>(rng.Uniform() * (vocab - 4)));
    }
    seq.push_back(2);
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

class BackboneModelTest : public ::testing::TestWithParam<nn::Backbone> {};

// The inference path (Predict, prefix cache enabled) must be bit-identical
// to the training-forward path for every backbone.
TEST_P(BackboneModelTest, PredictBitIdenticalToForward) {
  nn::SequenceModelConfig cfg;
  cfg.backbone = GetParam();
  cfg.seed = 404;
  nn::SequenceModel model(cfg);
  for (const std::vector<int>& seq : GrowingSequences(12, cfg.vocab_size, 5)) {
    double trained_path = model.Forward(seq);
    double infer_path = model.Predict(seq);
    EXPECT_EQ(trained_path, infer_path);
    // Repeat from a warmed cache: still identical.
    EXPECT_EQ(model.Predict(seq), trained_path);
  }
}

// Cached (incremental) and from-scratch (cache disabled) encodes agree
// exactly, and the growing-sequence pattern actually reuses prefixes.
TEST_P(BackboneModelTest, PrefixCacheEquivalentToScratch) {
  nn::SequenceModelConfig cached_cfg;
  cached_cfg.backbone = GetParam();
  cached_cfg.seed = 405;
  nn::SequenceModelConfig scratch_cfg = cached_cfg;
  scratch_cfg.prefix_cache_bytes = 0;
  nn::SequenceModel cached(cached_cfg);
  nn::SequenceModel scratch(scratch_cfg);

  for (const std::vector<int>& seq : GrowingSequences(16, 64, 6)) {
    EXPECT_EQ(cached.Predict(seq), scratch.Predict(seq));
    EXPECT_EQ(cached.Encode(seq), scratch.Encode(seq));
  }
  nn::PrefixCacheStats stats = cached.prefix_cache_stats();
  if (GetParam() != nn::Backbone::kTransformer) {
    EXPECT_GT(stats.hits, 0);
    EXPECT_GT(stats.tokens_reused, 0);
    EXPECT_GT(stats.HitRate(), 0.0);
  } else {
    // The transformer has no incremental form; its cache stays disabled.
    EXPECT_EQ(stats.lookups, 0);
  }
  EXPECT_EQ(scratch.prefix_cache_stats().hits, 0);
}

// A weight update must drop cached states: post-training predictions match
// a cache-less twin trained identically.
TEST_P(BackboneModelTest, CacheInvalidatedByTraining) {
  nn::SequenceModelConfig cached_cfg;
  cached_cfg.backbone = GetParam();
  cached_cfg.seed = 406;
  nn::SequenceModelConfig scratch_cfg = cached_cfg;
  scratch_cfg.prefix_cache_bytes = 0;
  nn::SequenceModel cached(cached_cfg);
  nn::SequenceModel scratch(scratch_cfg);

  std::vector<std::vector<int>> sequences = GrowingSequences(8, 64, 7);
  for (const std::vector<int>& seq : sequences) cached.Predict(seq);  // warm

  for (const std::vector<int>& seq : sequences) {
    EXPECT_EQ(cached.TrainStep(seq, 0.5), scratch.TrainStep(seq, 0.5));
    cached.ApplyStep();
    scratch.ApplyStep();
  }
  for (const std::vector<int>& seq : sequences) {
    EXPECT_EQ(cached.Predict(seq), scratch.Predict(seq));
  }
  if (GetParam() != nn::Backbone::kTransformer) {
    EXPECT_GT(cached.prefix_cache_stats().invalidations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneModelTest,
                         ::testing::Values(nn::Backbone::kLstm,
                                           nn::Backbone::kRnn,
                                           nn::Backbone::kTransformer),
                         [](const auto& info) {
                           return nn::BackboneName(info.param);
                         });

TEST(NoveltyEstimatorTest, DeterministicAcrossInstances) {
  NoveltyConfig cfg;
  cfg.seed = 99;
  NoveltyEstimator a(cfg);
  NoveltyEstimator b(cfg);
  for (const std::vector<int>& seq : IndependentSequences(10, 64, 8)) {
    EXPECT_EQ(a.Novelty(seq), b.Novelty(seq));
    EXPECT_EQ(a.NormalizedNovelty(seq), b.NormalizedNovelty(seq));
    EXPECT_EQ(a.TargetEmbedding(seq), b.TargetEmbedding(seq));
  }
}

TEST(BatchScoringTest, PredictBatchBitIdenticalAcrossThreadCounts) {
  PredictorConfig cfg;
  cfg.seed = 17;
  PerformancePredictor predictor(cfg);
  std::vector<std::vector<int>> batch = IndependentSequences(24, 64, 9);

  std::vector<double> serial;
  for (const std::vector<int>& seq : batch) serial.push_back(predictor.Predict(seq));
  EXPECT_EQ(predictor.PredictBatch(batch, 1), serial);
  EXPECT_EQ(predictor.PredictBatch(batch, 4), serial);
}

TEST(BatchScoringTest, NoveltyBatchesBitIdenticalAcrossThreadCounts) {
  NoveltyConfig cfg;
  cfg.seed = 18;
  // Running-scale state mutates per score, so each variant gets an
  // identically-seeded fresh estimator.
  NoveltyEstimator serial(cfg);
  NoveltyEstimator batched1(cfg);
  NoveltyEstimator batched4(cfg);
  std::vector<std::vector<int>> batch = IndependentSequences(24, 64, 10);

  std::vector<double> raw_expected, norm_expected;
  for (const std::vector<int>& seq : batch) {
    raw_expected.push_back(serial.Novelty(seq));
  }
  for (const std::vector<int>& seq : batch) {
    norm_expected.push_back(serial.NormalizedNovelty(seq));
  }
  EXPECT_EQ(batched1.NoveltyBatch(batch, 1), raw_expected);
  EXPECT_EQ(batched4.NoveltyBatch(batch, 4), raw_expected);
  EXPECT_EQ(batched1.NormalizedNoveltyBatch(batch, 1), norm_expected);
  EXPECT_EQ(batched4.NormalizedNoveltyBatch(batch, 4), norm_expected);

  std::vector<std::vector<double>> embeddings =
      serial.TargetEmbeddingBatch(batch, 4);
  ASSERT_EQ(embeddings.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(embeddings[i], serial.TargetEmbedding(batch[i]));
  }
}

EngineConfig SmallEngineConfig(uint64_t seed) {
  EngineConfig cfg;
  cfg.episodes = 5;
  cfg.steps_per_episode = 4;
  cfg.cold_start_episodes = 2;
  cfg.finetune_every_episodes = 2;
  cfg.cold_start_train_epochs = 4;
  cfg.collect_novelty_metrics = true;  // exercises the Fig. 14 sweep
  cfg.evaluator.folds = 2;
  cfg.evaluator.forest_trees = 6;
  cfg.seed = seed;
  return cfg;
}

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.samples = 120;
  spec.features = 6;
  spec.seed = 77;
  return MakeClassification(spec);
}

void ExpectRunsBitIdentical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.base_score, b.base_score);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.downstream_evaluations, b.downstream_evaluations);
  EXPECT_EQ(a.predictor_estimations, b.predictor_estimations);
  EXPECT_EQ(a.episode_best, b.episode_best);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].reward, b.trace[i].reward);
    EXPECT_EQ(a.trace[i].performance, b.trace[i].performance);
    EXPECT_EQ(a.trace[i].novelty, b.trace[i].novelty);
    EXPECT_EQ(a.trace[i].novelty_distance, b.trace[i].novelty_distance);
    EXPECT_EQ(a.trace[i].downstream_evaluated, b.trace[i].downstream_evaluated);
  }
}

TEST(EngineEstimationTest, RunBitIdenticalAtOneAndFourThreads) {
  Dataset dataset = SmallDataset();
  EngineConfig serial_cfg = SmallEngineConfig(31);
  serial_cfg.num_threads = 1;
  EngineConfig parallel_cfg = SmallEngineConfig(31);
  parallel_cfg.num_threads = 4;
  EngineResult serial = FastFtEngine(serial_cfg).Run(dataset).ValueOrDie();
  EngineResult parallel = FastFtEngine(parallel_cfg).Run(dataset).ValueOrDie();
  ExpectRunsBitIdentical(serial, parallel);
}

TEST(EngineEstimationTest, RunBitIdenticalWithAndWithoutPrefixCache) {
  Dataset dataset = SmallDataset();
  EngineConfig cached_cfg = SmallEngineConfig(32);
  EngineConfig uncached_cfg = SmallEngineConfig(32);
  uncached_cfg.prefix_cache_kb = 0;
  EngineResult cached = FastFtEngine(cached_cfg).Run(dataset).ValueOrDie();
  EngineResult uncached = FastFtEngine(uncached_cfg).Run(dataset).ValueOrDie();
  ExpectRunsBitIdentical(cached, uncached);

  // The estimation loop queries the cache and reuses prefix work...
  EXPECT_GT(cached.estimation_cache.lookups, 0);
  EXPECT_GT(cached.estimation_cache.tokens_reused, 0);
  // ...while training epochs invalidate it.
  EXPECT_GT(cached.estimation_cache.invalidations, 0);
  EXPECT_EQ(uncached.estimation_cache.lookups, 0);
}

TEST(EngineEstimationTest, RejectsNegativePrefixCacheSize) {
  EngineConfig cfg = SmallEngineConfig(33);
  cfg.prefix_cache_kb = -1;
  Result<EngineResult> r = FastFtEngine(cfg).Run(SmallDataset());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace fastft
