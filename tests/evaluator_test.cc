// Tests for the downstream-task evaluator.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "ml/evaluator.h"

namespace fastft {
namespace {

Dataset Classification(int n = 200, uint64_t seed = 9) {
  SyntheticSpec spec;
  spec.samples = n;
  spec.features = 8;
  spec.seed = seed;
  return MakeClassification(spec);
}

TEST(EvaluatorTest, ScoreInUnitInterval) {
  Evaluator evaluator;
  double score = evaluator.Evaluate(Classification());
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(EvaluatorTest, BetterThanChanceOnLearnableData) {
  Evaluator evaluator;
  EXPECT_GT(evaluator.Evaluate(Classification(400)), 0.55);
}

TEST(EvaluatorTest, DeterministicGivenSeed) {
  EvaluatorConfig ec;
  ec.seed = 77;
  Evaluator a(ec), b(ec);
  Dataset ds = Classification();
  EXPECT_DOUBLE_EQ(a.Evaluate(ds), b.Evaluate(ds));
}

TEST(EvaluatorTest, CountsEvaluations) {
  Evaluator evaluator;
  Dataset ds = Classification();
  EXPECT_EQ(evaluator.evaluation_count(), 0);
  evaluator.Evaluate(ds);
  evaluator.Evaluate(ds);
  EXPECT_EQ(evaluator.evaluation_count(), 2);
}

TEST(EvaluatorTest, RegressionUsesRaeByDefault) {
  SyntheticSpec spec;
  spec.samples = 250;
  spec.features = 6;
  Dataset ds = MakeRegression(spec);
  Evaluator evaluator;
  double score = evaluator.Evaluate(ds);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(EvaluatorTest, DetectionAucBetterThanChance) {
  SyntheticSpec spec;
  spec.samples = 400;
  spec.features = 6;
  spec.anomaly_rate = 0.15;
  Dataset ds = MakeDetection(spec);
  Evaluator evaluator;
  EXPECT_GT(evaluator.Evaluate(ds), 0.5);
}

TEST(EvaluatorTest, ExplicitMetricOverride) {
  Evaluator evaluator;
  Dataset ds = Classification();
  double acc = evaluator.Evaluate(ds, Metric::kAccuracy);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(EvaluatorTest, FeatureImportanceMatchesFeatureCount) {
  Evaluator evaluator;
  Dataset ds = Classification();
  std::vector<double> importance = evaluator.FeatureImportance(ds);
  EXPECT_EQ(static_cast<int>(importance.size()), ds.NumFeatures());
  double sum = 0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

Dataset TinyTwoRowDataset() {
  Dataset ds;
  ds.name = "tiny";
  ds.task = TaskType::kClassification;
  Status st = ds.features.AddColumn("a", {0.25, 0.75});
  st = ds.features.AddColumn("b", {1.0, -1.0});
  ds.labels = {0, 1};
  return ds;
}

TEST(EvaluatorTest, ReturnsNaNWhenEveryFoldIsSkipped) {
  // Two rows across two folds leaves every fold with a single training row,
  // so every fold is skipped. The old code silently returned 0.0 — a value
  // indistinguishable from a legitimate worst-case score; now the degenerate
  // case is a NaN sentinel the caller can isfinite-check.
  EvaluatorConfig ec;
  ec.folds = 2;
  Evaluator evaluator(ec);
  double score = evaluator.Evaluate(TinyTwoRowDataset());
  EXPECT_TRUE(std::isnan(score));
  // The call still counts as an evaluation attempt.
  EXPECT_EQ(evaluator.evaluation_count(), 1);
}

TEST(EvaluatorTest, NormalScoresStayFinite) {
  Evaluator evaluator;
  EXPECT_TRUE(std::isfinite(evaluator.Evaluate(Classification())));
}

class ModelKindTest : public testing::TestWithParam<ModelKind> {};

TEST_P(ModelKindTest, AllModelFamiliesEvaluate) {
  EvaluatorConfig ec;
  ec.model = GetParam();
  ec.folds = 2;
  Evaluator evaluator(ec);
  double score = evaluator.Evaluate(Classification(150));
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ModelKindTest,
    testing::Values(ModelKind::kRandomForest, ModelKind::kDecisionTree,
                    ModelKind::kGradientBoosting,
                    ModelKind::kLogisticRegression, ModelKind::kLinearSvm,
                    ModelKind::kRidge));

TEST(ModelKindTest, RegressionCapableKinds) {
  SyntheticSpec spec;
  spec.samples = 150;
  Dataset ds = MakeRegression(spec);
  for (ModelKind kind : {ModelKind::kRandomForest, ModelKind::kDecisionTree,
                         ModelKind::kGradientBoosting, ModelKind::kRidge}) {
    EvaluatorConfig ec;
    ec.model = kind;
    ec.folds = 2;
    Evaluator evaluator(ec);
    double score = evaluator.Evaluate(ds);
    EXPECT_GE(score, 0.0) << ModelKindName(kind);
  }
}

TEST(ModelKindTest, NamesMatchPaperTable) {
  EXPECT_STREQ(ModelKindName(ModelKind::kRandomForest), "RFC");
  EXPECT_STREQ(ModelKindName(ModelKind::kGradientBoosting), "XGBC");
  EXPECT_STREQ(ModelKindName(ModelKind::kLogisticRegression), "LR");
  EXPECT_STREQ(ModelKindName(ModelKind::kLinearSvm), "SVM-C");
  EXPECT_STREQ(ModelKindName(ModelKind::kRidge), "Ridge-C");
  EXPECT_STREQ(ModelKindName(ModelKind::kDecisionTree), "DT-C");
}

}  // namespace
}  // namespace fastft
