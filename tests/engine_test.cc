// Integration tests for the FastFT engine (Algorithms 1 & 2).

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "data/dataset_zoo.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

EngineConfig FastConfig(uint64_t seed = 2024) {
  EngineConfig cfg;
  cfg.episodes = 5;
  cfg.steps_per_episode = 4;
  cfg.cold_start_episodes = 2;
  cfg.finetune_every_episodes = 2;
  cfg.cold_start_train_epochs = 4;
  cfg.evaluator.folds = 2;
  cfg.evaluator.forest_trees = 6;
  cfg.seed = seed;
  return cfg;
}

Dataset SmallDataset() {
  SyntheticSpec spec;
  spec.samples = 140;
  spec.features = 7;
  spec.seed = 50;
  return MakeClassification(spec);
}

TEST(EngineTest, RunsAndImprovesOrMatchesBase) {
  FastFtEngine engine(FastConfig());
  EngineResult r = engine.Run(SmallDataset()).ValueOrDie();
  EXPECT_GE(r.best_score, r.base_score);
  EXPECT_GT(r.best_score, 0.0);
  EXPECT_EQ(r.total_steps, 5 * 4);
  EXPECT_EQ(r.trace.size(), 20u);
  EXPECT_EQ(r.episode_best.size(), 5u);
  EXPECT_TRUE(r.best_dataset.Validate().ok());
}

TEST(EngineTest, DeterministicGivenSeed) {
  EngineResult a = FastFtEngine(FastConfig(7)).Run(SmallDataset()).ValueOrDie();
  EngineResult b = FastFtEngine(FastConfig(7)).Run(SmallDataset()).ValueOrDie();
  EXPECT_DOUBLE_EQ(a.best_score, b.best_score);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trace[i].reward, b.trace[i].reward);
  }
}

TEST(EngineTest, SeedsChangeTrajectories) {
  EngineResult a = FastFtEngine(FastConfig(7)).Run(SmallDataset()).ValueOrDie();
  EngineResult b = FastFtEngine(FastConfig(8)).Run(SmallDataset()).ValueOrDie();
  bool any_diff = false;
  for (size_t i = 0; i < a.trace.size(); ++i) {
    any_diff |= (a.trace[i].reward != b.trace[i].reward);
  }
  EXPECT_TRUE(any_diff);
}

TEST(EngineTest, ColdStartAlwaysEvaluatesDownstream) {
  EngineConfig cfg = FastConfig();
  FastFtEngine engine(cfg);
  EngineResult r = engine.Run(SmallDataset()).ValueOrDie();
  for (const StepTrace& t : r.trace) {
    if (t.episode < cfg.cold_start_episodes && t.generated) {
      EXPECT_TRUE(t.downstream_evaluated)
          << "cold-start step used the predictor";
    }
  }
}

TEST(EngineTest, PredictorReducesDownstreamEvaluations) {
  EngineConfig with = FastConfig(3);
  with.episodes = 8;
  EngineConfig without = with;
  without.use_performance_predictor = false;
  EngineResult r_with = FastFtEngine(with).Run(SmallDataset()).ValueOrDie();
  EngineResult r_without = FastFtEngine(without).Run(SmallDataset()).ValueOrDie();
  EXPECT_LT(r_with.downstream_evaluations, r_without.downstream_evaluations);
  EXPECT_GT(r_with.predictor_estimations, 0);
  EXPECT_EQ(r_without.predictor_estimations, 0);
}

TEST(EngineTest, AblationFlagsRun) {
  for (int mask = 0; mask < 8; ++mask) {
    EngineConfig cfg = FastConfig(mask + 10);
    cfg.episodes = 3;
    cfg.use_performance_predictor = mask & 1;
    cfg.use_novelty = mask & 2;
    cfg.prioritized_replay = mask & 4;
    EngineResult r = FastFtEngine(cfg).Run(SmallDataset()).ValueOrDie();
    EXPECT_GE(r.best_score, r.base_score) << "mask " << mask;
  }
}

TEST(EngineTest, TimeBucketsCoverRun) {
  FastFtEngine engine(FastConfig());
  EngineResult r = engine.Run(SmallDataset()).ValueOrDie();
  EXPECT_GT(r.times.Get("evaluation"), 0.0);
  EXPECT_GT(r.times.Get("optimization"), 0.0);
  // Estimation bucket only active once components are trained.
  EXPECT_GE(r.times.Get("estimation"), 0.0);
}

TEST(EngineTest, NoveltyMetricsCollectedOnDemand) {
  EngineConfig cfg = FastConfig();
  cfg.collect_novelty_metrics = true;
  EngineResult r = FastFtEngine(cfg).Run(SmallDataset()).ValueOrDie();
  bool any_distance = false;
  int last_unseen = 0;
  for (const StepTrace& t : r.trace) {
    any_distance |= (t.novelty_distance > 0.0);
    EXPECT_GE(t.unseen_cumulative, last_unseen);  // monotone counter
    last_unseen = t.unseen_cumulative;
  }
  EXPECT_TRUE(any_distance);
  EXPECT_GT(last_unseen, 0);
}

TEST(EngineTest, TraceNamesGeneratedFeatures) {
  EngineResult r = FastFtEngine(FastConfig()).Run(SmallDataset()).ValueOrDie();
  bool any_named = false;
  for (const StepTrace& t : r.trace) any_named |= !t.top_new_feature.empty();
  EXPECT_TRUE(any_named);
}

class FrameworkTest : public testing::TestWithParam<RlFramework> {};

TEST_P(FrameworkTest, AllRlFrameworksRun) {
  EngineConfig cfg = FastConfig(33);
  cfg.episodes = 3;
  cfg.framework = GetParam();
  EngineResult r = FastFtEngine(cfg).Run(SmallDataset()).ValueOrDie();
  EXPECT_GE(r.best_score, r.base_score);
  EXPECT_EQ(r.total_steps, 3 * 4);
}

INSTANTIATE_TEST_SUITE_P(
    AllFrameworks, FrameworkTest,
    testing::Values(RlFramework::kActorCritic, RlFramework::kDqn,
                    RlFramework::kDoubleDqn, RlFramework::kDuelingDqn,
                    RlFramework::kDuelingDoubleDqn));

class EngineBackboneTest : public testing::TestWithParam<nn::Backbone> {};

TEST_P(EngineBackboneTest, AllSequenceBackbonesRun) {
  EngineConfig cfg = FastConfig(44);
  cfg.episodes = 4;
  cfg.backbone = GetParam();
  EngineResult r = FastFtEngine(cfg).Run(SmallDataset()).ValueOrDie();
  EXPECT_GE(r.best_score, r.base_score);
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, EngineBackboneTest,
                         testing::Values(nn::Backbone::kLstm,
                                         nn::Backbone::kRnn,
                                         nn::Backbone::kTransformer));

TEST(EngineTest, RegressionTaskRuns) {
  SyntheticSpec spec;
  spec.samples = 130;
  spec.features = 6;
  Dataset ds = MakeRegression(spec);
  EngineResult r = FastFtEngine(FastConfig(55)).Run(ds).ValueOrDie();
  EXPECT_GE(r.best_score, r.base_score);
  EXPECT_TRUE(r.best_dataset.task == TaskType::kRegression);
}

TEST(EngineTest, DetectionTaskRuns) {
  SyntheticSpec spec;
  spec.samples = 200;
  spec.features = 6;
  spec.anomaly_rate = 0.12;
  Dataset ds = MakeDetection(spec);
  EngineResult r = FastFtEngine(FastConfig(66)).Run(ds).ValueOrDie();
  EXPECT_GE(r.best_score, r.base_score);
}

TEST(EngineTest, ZeroThresholdsSuppressTriggers) {
  // α = β = 0: after cold start the engine must never call downstream.
  EngineConfig cfg = FastConfig(77);
  cfg.alpha_percentile = 0.0;
  cfg.beta_percentile = 0.0;
  cfg.episodes = 6;
  EngineResult r = FastFtEngine(cfg).Run(SmallDataset()).ValueOrDie();
  for (const StepTrace& t : r.trace) {
    if (t.episode >= cfg.cold_start_episodes) {
      EXPECT_FALSE(t.downstream_evaluated);
    }
  }
}

TEST(EngineTest, DegenerateDatasetSurfacesAsStatusNotZeroScore) {
  // Two rows across two folds means the evaluator skips every fold and
  // returns NaN (never a fake 0.0); the engine has no baseline anchor and
  // must refuse the run with an explanatory Status instead of reporting a
  // zero base score.
  Dataset tiny;
  tiny.name = "tiny";
  tiny.task = TaskType::kClassification;
  Status st = tiny.features.AddColumn("a", {0.25, 0.75});
  st = tiny.features.AddColumn("b", {1.0, -1.0});
  tiny.labels = {0, 1};
  ASSERT_TRUE(tiny.Validate().ok());
  Result<EngineResult> run = FastFtEngine(FastConfig()).Run(tiny);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("fold"), std::string::npos);
}

TEST(EngineTest, NegativeThreadCountRejected) {
  EngineConfig cfg = FastConfig();
  cfg.num_threads = -1;
  Result<EngineResult> run = FastFtEngine(cfg).Run(SmallDataset());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, RlFrameworkNames) {
  EXPECT_STREQ(RlFrameworkName(RlFramework::kActorCritic), "ActorCritic");
  EXPECT_STREQ(RlFrameworkName(RlFramework::kDuelingDoubleDqn),
               "DuelingDDQN");
}

}  // namespace
}  // namespace fastft
