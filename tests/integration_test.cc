// Cross-module integration and property tests.
//
// These exercise invariants that span modules: the FeatureSpace's hygiene
// guarantees under random operation storms, and the full train → extract
// program → re-apply loop over engine output.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/engine.h"
#include "core/expression_parser.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

Dataset SmallDataset(uint64_t seed = 71) {
  SyntheticSpec spec;
  spec.samples = 120;
  spec.features = 6;
  spec.seed = seed;
  return MakeClassification(spec);
}

// Property: after any sequence of random crossings, the FeatureSpace
// invariants hold — budget respected, originals intact, all values finite,
// every column name parses back to an expression evaluating to the column.
class FeatureSpaceStormTest : public testing::TestWithParam<int> {};

TEST_P(FeatureSpaceStormTest, InvariantsSurviveRandomOperations) {
  Dataset ds = SmallDataset(100 + GetParam());
  FeatureSpaceConfig cfg;
  cfg.max_features = 20;
  FeatureSpace space(ds, cfg);
  Rng rng(GetParam());

  for (int step = 0; step < 40; ++step) {
    OpType op = OpFromIndex(rng.UniformInt(kNumOperations));
    std::vector<int> head = {rng.UniformInt(space.NumColumns())};
    std::vector<int> tail;
    if (!IsUnary(op)) tail = {rng.UniformInt(space.NumColumns())};
    space.ApplyOperation(op, head, tail, &rng);

    // Budget and originals.
    ASSERT_LE(space.NumColumns(), cfg.max_features);
    ASSERT_EQ(space.NumOriginals(), ds.NumFeatures());
    for (int c = 0; c < ds.NumFeatures(); ++c) {
      ASSERT_TRUE(IsLeaf(space.Expression(c)));
    }
  }

  // Finiteness and name → expression → values consistency.
  std::vector<std::vector<double>> originals;
  std::vector<std::string> names;
  for (int c = 0; c < ds.NumFeatures(); ++c) {
    originals.push_back(ds.features.Col(c));
    names.push_back(ds.features.Name(c));
  }
  for (int c = 0; c < space.NumColumns(); ++c) {
    const std::vector<double>& values = space.Values(c);
    for (double v : values) ASSERT_TRUE(std::isfinite(v));

    auto parsed = ParseExpression(space.ColumnName(c), names);
    ASSERT_TRUE(parsed.ok()) << space.ColumnName(c);
    std::vector<double> recomputed = EvalExpr(parsed.value(), originals);
    // Recomputation matches up to the sanitizer's non-finite repair.
    int matches = 0;
    for (size_t r = 0; r < values.size(); ++r) {
      matches += std::abs(values[r] - recomputed[r]) < 1e-9 ||
                 !std::isfinite(recomputed[r]);
    }
    EXPECT_EQ(matches, static_cast<int>(values.size()))
        << space.ColumnName(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeatureSpaceStormTest,
                         testing::Values(1, 2, 3, 4, 5));

TEST(EngineProgramTest, ExtractApplyParityOnFreshRows) {
  Dataset train = SmallDataset(7);
  EngineConfig cfg;
  cfg.episodes = 5;
  cfg.steps_per_episode = 5;
  cfg.cold_start_episodes = 2;
  cfg.evaluator.folds = 2;
  cfg.seed = 13;
  EngineResult result = FastFtEngine(cfg).Run(train).ValueOrDie();

  std::vector<std::string> names;
  for (int c = 0; c < train.NumFeatures(); ++c) {
    names.push_back(train.features.Name(c));
  }
  auto program = TransformationProgram::FromTransformedDataset(
      result.best_dataset, train.NumFeatures(), names);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program.value().size(),
            result.best_dataset.NumFeatures() - train.NumFeatures());

  // Serialization round-trips the whole program.
  auto reloaded =
      TransformationProgram::Deserialize(program.value().Serialize());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().size(), program.value().size());

  // Applying to fresh rows with the same schema works and names match.
  Dataset fresh = SmallDataset(8);
  auto applied = reloaded.value().Apply(fresh);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied.value().NumFeatures(),
            fresh.NumFeatures() + program.value().size());
  EXPECT_TRUE(applied.value().Validate().ok());
}

TEST(EngineProgramTest, AppliedColumnsMatchEngineColumnsOnTrainRows) {
  Dataset train = SmallDataset(9);
  EngineConfig cfg;
  cfg.episodes = 4;
  cfg.steps_per_episode = 4;
  cfg.cold_start_episodes = 2;
  cfg.evaluator.folds = 2;
  cfg.seed = 17;
  EngineResult result = FastFtEngine(cfg).Run(train).ValueOrDie();

  std::vector<std::string> names;
  for (int c = 0; c < train.NumFeatures(); ++c) {
    names.push_back(train.features.Name(c));
  }
  auto program = TransformationProgram::FromTransformedDataset(
      result.best_dataset, train.NumFeatures(), names);
  ASSERT_TRUE(program.ok());
  auto applied = program.value().Apply(train);
  ASSERT_TRUE(applied.ok());
  ASSERT_EQ(applied.value().NumFeatures(),
            result.best_dataset.NumFeatures());
  // The re-applied columns equal the engine's columns (up to the
  // sanitizer's median repair of non-finite entries).
  for (int c = train.NumFeatures(); c < result.best_dataset.NumFeatures();
       ++c) {
    int agreements = 0;
    for (int r = 0; r < train.NumRows(); ++r) {
      agreements += std::abs(applied.value().features.At(r, c) -
                             result.best_dataset.features.At(r, c)) < 1e-9;
    }
    EXPECT_GE(agreements, train.NumRows() * 9 / 10)
        << result.best_dataset.features.Name(c);
  }
}

TEST(EndToEndTest, FullLoopImprovesAcrossAllTasks) {
  for (TaskType task : {TaskType::kClassification, TaskType::kRegression,
                        TaskType::kDetection}) {
    SyntheticSpec spec;
    spec.samples = 160;
    spec.features = 6;
    spec.seed = 64;
    Dataset ds = MakeSynthetic(task, spec);
    EngineConfig cfg;
    cfg.episodes = 6;
    cfg.steps_per_episode = 6;
    cfg.cold_start_episodes = 2;
    cfg.evaluator.folds = 2;
    cfg.seed = 21;
    EngineResult r = FastFtEngine(cfg).Run(ds).ValueOrDie();
    EXPECT_GE(r.best_score, r.base_score) << TaskTypeCode(task);
    EXPECT_TRUE(r.best_dataset.Validate().ok());
  }
}

}  // namespace
}  // namespace fastft
