// Tests for CSV parsing, writing, and dataset loading.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/csv.h"

namespace fastft {
namespace {

TEST(CsvTest, ParsesNumericTable) {
  auto r = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  const DataFrame& f = r.value();
  EXPECT_EQ(f.NumRows(), 2);
  EXPECT_EQ(f.NumCols(), 2);
  EXPECT_DOUBLE_EQ(f.At(1, 1), 4.0);
}

TEST(CsvTest, EmptyInputIsError) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RaggedRowIsError) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, RaggedRowErrorNamesRowAndCounts) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // 1-based data-row numbering (the bad row is the second one) with
  // expected/actual cell counts, so the user can find the line.
  EXPECT_NE(r.status().message().find("row 2"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("has 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("expected 3"), std::string::npos);
}

TEST(CsvTest, RaggedRowNumberSkipsBlankLines) {
  auto r = ParseCsv("a,b\n1,2\n\n3,4\n5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 3"), std::string::npos)
      << r.status().message();
}

TEST(CsvTest, QuotedFieldKeepsComma) {
  auto r = ParseCsv("name,v\n\"a,b\",1\n");
  ASSERT_TRUE(r.ok());
  // "a,b" is one categorical cell, not a ragged row.
  EXPECT_EQ(r.value().NumCols(), 2);
  EXPECT_EQ(r.value().NumRows(), 1);
}

TEST(CsvTest, EscapedQuoteInsideQuotedField) {
  auto r = ParseCsv("name,v\n\"say \"\"hi\"\"\",1\n\"plain\",2\n");
  ASSERT_TRUE(r.ok());
  // Two distinct categorical values → codes 0 and 1 in first-seen order.
  EXPECT_DOUBLE_EQ(r.value().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r.value().At(1, 0), 1.0);
}

TEST(CsvTest, QuotedHeaderWithCommaAndCrlf) {
  auto r = ParseCsv("\"x, raw\",y\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Name(0), "x, raw");
  EXPECT_DOUBLE_EQ(r.value().At(0, 1), 2.0);
}

TEST(CsvTest, QuotedNumericCellStillNumeric) {
  auto r = ParseCsv("x\n\"1.5\"\n\"2.5\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().At(1, 0), 2.5);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto r = ParseCsv("a,b\n\"unclosed,1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unterminated"), std::string::npos)
      << r.status().message();
}

TEST(CsvTest, SkipsBlankLines) {
  auto r = ParseCsv("a\n1\n\n2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumRows(), 2);
}

TEST(CsvTest, TrimsWhitespaceAndCr) {
  auto r = ParseCsv("a, b\r\n 1 , 2 \r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Name(1), "b");
  EXPECT_DOUBLE_EQ(r.value().At(0, 1), 2.0);
}

TEST(CsvTest, CategoricalColumnEncoded) {
  auto r = ParseCsv("color,v\nred,1\nblue,2\nred,3\n");
  ASSERT_TRUE(r.ok());
  const DataFrame& f = r.value();
  EXPECT_DOUBLE_EQ(f.At(0, 0), 0.0);  // red → 0
  EXPECT_DOUBLE_EQ(f.At(1, 0), 1.0);  // blue → 1
  EXPECT_DOUBLE_EQ(f.At(2, 0), 0.0);  // red again → 0
}

TEST(CsvTest, ScientificNotationParses) {
  auto r = ParseCsv("x\n1e-3\n-2.5E2\n");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().At(0, 0), 1e-3);
  EXPECT_DOUBLE_EQ(r.value().At(1, 0), -250.0);
}

TEST(CsvTest, WriteReadRoundTrip) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn("x", {1.5, -2.25}).ok());
  ASSERT_TRUE(f.AddColumn("y", {3.0, 4.0}).ok());
  auto r = ParseCsv(WriteCsv(f));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(r.value().At(1, 0), -2.25);
  EXPECT_EQ(r.value().Name(1), "y");
}

TEST(CsvTest, FileRoundTripAndDatasetLoad) {
  std::string path = testing::TempDir() + "/fastft_csv_test.csv";
  DataFrame f;
  ASSERT_TRUE(f.AddColumn("f0", {0.1, 0.2, 0.3, 0.4}).ok());
  ASSERT_TRUE(f.AddColumn("label", {0, 1, 0, 1}).ok());
  ASSERT_TRUE(WriteCsvFile(f, path).ok());

  auto ds = ReadDatasetCsv(path, "label", TaskType::kClassification);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().NumFeatures(), 1);
  EXPECT_EQ(ds.value().NumRows(), 4);
  EXPECT_EQ(ds.value().NumClasses(), 2);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, MissingLabelColumnIsNotFound) {
  std::string path = testing::TempDir() + "/fastft_csv_nolabel.csv";
  std::ofstream(path) << "a,b\n1,2\n";
  auto r = ReadDatasetCsv(path, "target", TaskType::kClassification);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fastft
