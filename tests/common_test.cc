// Tests for Status/Result, Rng, stats, and timers.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/timer.h"

namespace fastft {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::OutOfRange("").code(),
      Status::NotFound("").code(),        Status::IOError("").code(),
      Status::Unimplemented("").code(),   Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultDeathTest, ValueAccessOnErrorChecks) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_DEATH(r.value(), "Result<> accessed without a value");
}

TEST(ResultDeathTest, ValueOrDieOnErrorChecks) {
  Result<int> r(Status::IOError("disk gone"));
  EXPECT_DEATH(std::move(r).ValueOrDie(), "disk gone");
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd input");
  return v / 2;
}

Status SumOfHalves(int a, int b, int* out) {
  int x = 0;
  FASTFT_ASSIGN_OR_RETURN(x, HalveEven(a));
  FASTFT_ASSIGN_OR_RETURN(int y, HalveEven(b));  // also declares
  *out = x + y;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnUnwrapsValues) {
  int out = -1;
  ASSERT_TRUE(SumOfHalves(4, 6, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = -1;
  Status s = SumOfHalves(4, 7, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, -1);  // second assignment never ran
}

TEST(ResultTest, AssignOrReturnMovesValue) {
  auto make = []() -> Result<std::string> { return std::string("abc"); };
  auto use = [&](std::string* out) -> Status {
    FASTFT_ASSIGN_OR_RETURN(*out, make());
    return Status::OK();
  };
  std::string out;
  ASSERT_TRUE(use(&out).ok());
  EXPECT_EQ(out, "abc");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.UniformInt(1000) == b.UniformInt(1000));
  EXPECT_LT(same, 10);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, SampleDiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.SampleDiscrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.6);
}

TEST(RngTest, SampleDiscreteNeverReturnsTrailingZeroWeight) {
  // Regression: the old fallback returned size()-1 when floating-point
  // accumulation left r >= acc, which could pick a zero-weight index.
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0};
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(rng.SampleDiscrete(weights), 0);
}

TEST(RngTest, SampleDiscreteSkipsInteriorAndTrailingZeros) {
  Rng rng(29);
  std::vector<double> weights = {0.0, 0.0, 5.0, 0.0};
  for (int i = 0; i < 2000; ++i) EXPECT_EQ(rng.SampleDiscrete(weights), 2);
}

TEST(RngTest, SampleDiscreteAlwaysPicksPositiveWeight) {
  Rng rng(31);
  std::vector<double> weights = {0.3, 0.0, 1e-12, 0.0, 2.0, 0.0};
  for (int i = 0; i < 5000; ++i) {
    int idx = rng.SampleDiscrete(weights);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(weights.size()));
    EXPECT_GT(weights[idx], 0.0) << "picked zero-weight index " << idx;
  }
}

TEST(RngTest, SampleDiscreteAllZeroFallsBackToUniform) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.SampleDiscrete(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 6);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(21);
  EXPECT_EQ(rng.SampleWithoutReplacement(3, 10).size(), 3u);
}

TEST(SplitMixTest, DeriveSeedIsStable) {
  EXPECT_EQ(DeriveSeed(42, 1), DeriveSeed(42, 1));
  EXPECT_NE(DeriveSeed(42, 1), DeriveSeed(42, 2));
  EXPECT_NE(DeriveSeed(42, 1), DeriveSeed(43, 1));
}

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(2.0));
}

TEST(StatsTest, EmptyInputsAreZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(empty, 0.5), 0.0);
  Summary s = Summarize(empty);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 10.0);
}

TEST(StatsTest, SummaryOrderedFields) {
  std::vector<double> v = {5, 1, 4, 2, 3, 9, 0};
  Summary s = Summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_LE(s.min, s.q25);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
  EXPECT_LE(s.q75, s.max);
  EXPECT_EQ(s.ToVector().size(), static_cast<size_t>(Summary::kNumFields));
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  std::vector<double> a = {1, 1, 1};
  std::vector<double> b = {1, 2, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(StatsTest, CosineSimilarity) {
  std::vector<double> a = {1, 0};
  std::vector<double> b = {0, 1};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, a), 1.0);
  std::vector<double> zero = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(TimerTest, BucketsAccumulate) {
  TimeBuckets buckets;
  buckets.Add("a", 1.0);
  buckets.Add("a", 0.5);
  buckets.Add("b", 2.0);
  EXPECT_DOUBLE_EQ(buckets.Get("a"), 1.5);
  EXPECT_DOUBLE_EQ(buckets.Get("b"), 2.0);
  EXPECT_DOUBLE_EQ(buckets.Get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(buckets.Total(), 3.5);
  buckets.Clear();
  EXPECT_DOUBLE_EQ(buckets.Total(), 0.0);
}

TEST(TimerTest, ScopedTimerAddsElapsed) {
  TimeBuckets buckets;
  {
    ScopedTimer timer(&buckets, "scope");
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(buckets.Get("scope"), 0.0);
}

TEST(TimerTest, WallTimerAdvances) {
  WallTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.Seconds(), 0.0);
}

// Regression: concurrent Add calls into the same bucket must lose no time
// (the pre-locking map would drop or corrupt updates under ThreadSanitizer
// and occasionally double-count via torn read-modify-writes).
TEST(TimerTest, ConcurrentAddsLoseNothing) {
  TimeBuckets buckets;
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buckets] {
      for (int i = 0; i < kAddsPerThread; ++i) {
        buckets.Add("shared", 0.001);
        buckets.Add("private", 0.002);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_NEAR(buckets.Get("shared"), kThreads * kAddsPerThread * 0.001, 1e-6);
  EXPECT_NEAR(buckets.Get("private"), kThreads * kAddsPerThread * 0.002, 1e-6);
  EXPECT_NEAR(buckets.Total(), kThreads * kAddsPerThread * 0.003, 1e-6);
  // buckets() returns a consistent copy, not a reference into live state.
  std::map<std::string, double> copy = buckets.buckets();
  buckets.Clear();
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets.Total(), 0.0);
}

TEST(LoggingTest, LineFormat) {
  std::vector<std::string> lines;
  internal::SetLogSinkForTest(&lines);
  FASTFT_LOG(Warning) << "format probe";
  internal::SetLogSinkForTest(nullptr);

  ASSERT_EQ(lines.size(), 1u);
  // [WARN +12.345ms T0 common_test.cc:NN] format probe
  std::regex pattern(
      R"(\[WARN \+\d+\.\d{3}ms T\d+ common_test\.cc:\d+\] format probe)");
  EXPECT_TRUE(std::regex_search(lines[0], pattern)) << "line: " << lines[0];
}

TEST(LoggingTest, MonotonicTimestampsAdvance) {
  std::vector<std::string> lines;
  internal::SetLogSinkForTest(&lines);
  FASTFT_LOG(Warning) << "first";
  FASTFT_LOG(Warning) << "second";
  internal::SetLogSinkForTest(nullptr);

  ASSERT_EQ(lines.size(), 2u);
  auto parse_ms = [](const std::string& line) {
    size_t plus = line.find('+');
    return std::stod(line.substr(plus + 1));
  };
  EXPECT_GE(parse_ms(lines[1]), parse_ms(lines[0]));
}

TEST(LoggingTest, BelowLevelNotEmitted) {
  std::vector<std::string> lines;
  internal::SetLogSinkForTest(&lines);
  FASTFT_LOG(Debug) << "too quiet";  // default level is kWarning
  internal::SetLogSinkForTest(nullptr);
  EXPECT_TRUE(lines.empty());
}

}  // namespace
}  // namespace fastft
