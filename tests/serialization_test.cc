// Tests for weight serialization (nn/serialization) and its model wrappers.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/performance_predictor.h"
#include "nn/sequence_model.h"
#include "nn/serialization.h"

namespace fastft {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializationTest, RoundTripRestoresExactValues) {
  Rng rng(1);
  nn::Parameter a(nn::Matrix::Randn(3, 4, 1.0, &rng));
  nn::Parameter b(nn::Matrix::Randn(1, 7, 1.0, &rng));
  std::string path = TempPath("weights_roundtrip.bin");
  ASSERT_TRUE(nn::SaveParameters({&a, &b}, path).ok());

  nn::Parameter a2(nn::Matrix(3, 4));
  nn::Parameter b2(nn::Matrix(1, 7));
  ASSERT_TRUE(nn::LoadParameters({&a2, &b2}, path).ok());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value.data()[i], a2.value.data()[i]);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.value.data()[i], b2.value.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  Rng rng(2);
  nn::Parameter a(nn::Matrix::Randn(3, 4, 1.0, &rng));
  std::string path = TempPath("weights_shape.bin");
  ASSERT_TRUE(nn::SaveParameters({&a}, path).ok());
  nn::Parameter wrong(nn::Matrix(4, 3));
  Status st = nn::LoadParameters({&wrong}, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, TensorCountMismatchRejected) {
  Rng rng(3);
  nn::Parameter a(nn::Matrix::Randn(2, 2, 1.0, &rng));
  std::string path = TempPath("weights_count.bin");
  ASSERT_TRUE(nn::SaveParameters({&a}, path).ok());
  nn::Parameter b(nn::Matrix(2, 2)), c(nn::Matrix(2, 2));
  EXPECT_FALSE(nn::LoadParameters({&b, &c}, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, GarbageFileRejected) {
  std::string path = TempPath("weights_garbage.bin");
  std::ofstream(path) << "this is not a weight file";
  nn::Parameter p(nn::Matrix(1, 1));
  Status st = nn::LoadParameters({&p}, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  nn::Parameter p(nn::Matrix(1, 1));
  EXPECT_EQ(nn::LoadParameters({&p}, "/no/such/file.bin").code(),
            StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedFileRejected) {
  Rng rng(4);
  nn::Parameter a(nn::Matrix::Randn(8, 8, 1.0, &rng));
  std::string path = TempPath("weights_trunc.bin");
  ASSERT_TRUE(nn::SaveParameters({&a}, path).ok());
  // Truncate the payload.
  {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size() / 2));
  }
  nn::Parameter b(nn::Matrix(8, 8));
  EXPECT_FALSE(nn::LoadParameters({&b}, path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, SequenceModelRoundTripPreservesForward) {
  nn::SequenceModelConfig cfg;
  cfg.vocab_size = 16;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  cfg.seed = 5;
  nn::SequenceModel model(cfg);
  // Train a little so weights are non-initial.
  for (int i = 0; i < 30; ++i) {
    model.TrainStep({1, 2, 3}, 0.8);
    model.ApplyStep();
  }
  std::vector<int> probe = {4, 9, 2, 7};
  double before = model.Forward(probe);

  std::string path = TempPath("seq_model.bin");
  ASSERT_TRUE(model.Save(path).ok());

  nn::SequenceModelConfig cfg2 = cfg;
  cfg2.seed = 999;  // different init — restored weights must override it
  nn::SequenceModel restored(cfg2);
  EXPECT_NE(restored.Forward(probe), before);
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_DOUBLE_EQ(restored.Forward(probe), before);
  std::remove(path.c_str());
}

TEST(SerializationTest, PredictorSaveLoad) {
  PredictorConfig cfg;
  cfg.vocab_size = 20;
  cfg.embed_dim = 8;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  PerformancePredictor predictor(cfg);
  Rng rng(6);
  predictor.Fit({{{1, 2, 3}, 0.7}, {{4, 5, 6}, 0.2}}, 40, &rng);
  double before = predictor.Predict({1, 2, 3});

  std::string path = TempPath("predictor.bin");
  ASSERT_TRUE(predictor.Save(path).ok());
  PerformancePredictor fresh(cfg);
  ASSERT_TRUE(fresh.Load(path).ok());
  EXPECT_DOUBLE_EQ(fresh.Predict({1, 2, 3}), before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fastft
