// Tests for the operation set: semantics and numeric guarding.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "core/operations.h"

namespace fastft {
namespace {

TEST(OperationsTest, UnaryBinaryPartition) {
  int unary = 0, binary = 0;
  for (int i = 0; i < kNumOperations; ++i) {
    if (IsUnary(OpFromIndex(i))) {
      ++unary;
    } else {
      ++binary;
    }
  }
  EXPECT_EQ(unary, kNumUnaryOperations);
  EXPECT_EQ(binary, kNumOperations - kNumUnaryOperations);
  EXPECT_GE(binary, 4);  // paper: plus, minus, multiply, divide
}

TEST(OperationsTest, BasicUnarySemantics) {
  EXPECT_DOUBLE_EQ(ApplyUnary(OpType::kSquare, 3.0), 9.0);
  EXPECT_DOUBLE_EQ(ApplyUnary(OpType::kCube, 2.0), 8.0);
  EXPECT_DOUBLE_EQ(ApplyUnary(OpType::kSqrtAbs, -4.0), 2.0);
  EXPECT_DOUBLE_EQ(ApplyUnary(OpType::kLog1pAbs, 0.0), 0.0);
  EXPECT_NEAR(ApplyUnary(OpType::kSin, M_PI / 2), 1.0, 1e-12);
  EXPECT_NEAR(ApplyUnary(OpType::kCos, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(ApplyUnary(OpType::kTanh, 100.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(ApplyUnary(OpType::kReciprocal, 4.0), 0.25);
}

TEST(OperationsTest, BasicBinarySemantics) {
  EXPECT_DOUBLE_EQ(ApplyBinary(OpType::kAdd, 2, 3), 5);
  EXPECT_DOUBLE_EQ(ApplyBinary(OpType::kSub, 2, 3), -1);
  EXPECT_DOUBLE_EQ(ApplyBinary(OpType::kMul, 2, 3), 6);
  EXPECT_DOUBLE_EQ(ApplyBinary(OpType::kDiv, 6, 3), 2);
}

TEST(OperationsTest, DivisionByZeroGuarded) {
  double v = ApplyBinary(OpType::kDiv, 1.0, 0.0);
  EXPECT_TRUE(std::isfinite(v));
  double w = ApplyUnary(OpType::kReciprocal, 0.0);
  EXPECT_TRUE(std::isfinite(w));
}

TEST(OperationsTest, ExpSaturates) {
  double v = ApplyUnary(OpType::kExpClip, 1000.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1.0);
}

TEST(OperationsTest, ExtremeInputsStayFinite) {
  const double inputs[] = {0.0, -0.0, 1e308, -1e308, 1e-308,
                           std::numeric_limits<double>::quiet_NaN()};
  for (int i = 0; i < kNumOperations; ++i) {
    OpType op = OpFromIndex(i);
    for (double a : inputs) {
      for (double b : inputs) {
        double v = IsUnary(op) ? ApplyUnary(op, a) : ApplyBinary(op, a, b);
        EXPECT_TRUE(std::isfinite(v))
            << OpName(op) << "(" << a << ", " << b << ") = " << v;
      }
    }
  }
}

TEST(OperationsTest, ColumnWiseMatchesScalar) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  std::vector<double> sum = ApplyBinary(OpType::kAdd, a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(sum[i], a[i] + b[i]);
  }
  std::vector<double> sq = ApplyUnary(OpType::kSquare, a);
  EXPECT_DOUBLE_EQ(sq[2], 9.0);
}

TEST(OperationsTest, NamesUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int i = 0; i < kNumOperations; ++i) {
    const std::string& name = OpName(OpFromIndex(i));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate op name " << name;
  }
}

TEST(OperationsDeathTest, WrongArityChecks) {
  EXPECT_DEATH(ApplyUnary(OpType::kAdd, 1.0), "unary");
  EXPECT_DEATH(ApplyBinary(OpType::kSquare, 1.0, 2.0), "binary");
}

}  // namespace
}  // namespace fastft
