// Tests for the Fig. 4 state representation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/state.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

FeatureSpace MakeSpace() {
  SyntheticSpec spec;
  spec.samples = 150;
  spec.features = 6;
  spec.seed = 40;
  return FeatureSpace(MakeClassification(spec));
}

TEST(StateTest, FixedDimensionRegardlessOfClusterSize) {
  FeatureSpace space = MakeSpace();
  EXPECT_EQ(ClusterState(space, {0}).size(), static_cast<size_t>(kStateDim));
  EXPECT_EQ(ClusterState(space, {0, 1, 2}).size(),
            static_cast<size_t>(kStateDim));
  EXPECT_EQ(FeatureSetState(space).size(), static_cast<size_t>(kStateDim));
}

TEST(StateTest, AllEntriesFinite) {
  FeatureSpace space = MakeSpace();
  for (double v : FeatureSetState(space)) EXPECT_TRUE(std::isfinite(v));
}

TEST(StateTest, DifferentClustersDifferentStates) {
  FeatureSpace space = MakeSpace();
  std::vector<double> a = ClusterState(space, {0});
  std::vector<double> b = ClusterState(space, {1});
  EXPECT_NE(a, b);
}

TEST(StateTest, DeterministicForSameCluster) {
  FeatureSpace space = MakeSpace();
  EXPECT_EQ(ClusterState(space, {0, 2}), ClusterState(space, {0, 2}));
}

TEST(StateTest, StateChangesWhenFeatureSetGrows) {
  FeatureSpace space = MakeSpace();
  std::vector<double> before = FeatureSetState(space);
  Rng rng(1);
  space.ApplyOperation(OpType::kSquare, {0, 1}, {}, &rng);
  std::vector<double> after = FeatureSetState(space);
  EXPECT_NE(before, after);
}

TEST(StateTest, SquashBoundsLargeValues) {
  // A column with huge magnitudes must still produce O(log) state entries.
  Dataset ds;
  ds.task = TaskType::kClassification;
  std::vector<double> big(50), labels(50);
  for (int i = 0; i < 50; ++i) {
    big[i] = 1e8 * (i % 2 == 0 ? 1 : -1) * (i + 1);
    labels[i] = i % 2;
  }
  ASSERT_TRUE(ds.features.AddColumn("big", big).ok());
  ds.labels = labels;
  FeatureSpace space(ds);
  for (double v : FeatureSetState(space)) {
    EXPECT_LT(std::abs(v), 50.0);  // log1p(1e10) ≈ 23
  }
}

TEST(StateTest, OperationOneHot) {
  std::vector<double> onehot = OperationOneHot(OpType::kMul);
  EXPECT_EQ(onehot.size(), static_cast<size_t>(kNumOperations));
  double sum = 0;
  for (double v : onehot) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(onehot[static_cast<int>(OpType::kMul)], 1.0);
}

TEST(StateTest, ConcatPreservesOrder) {
  std::vector<double> joined = Concat({1, 2}, {3});
  EXPECT_EQ(joined, (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(Concat({}, {}).size(), 0u);
}

TEST(StateTest, StateDimMatchesSummaryFields) {
  EXPECT_EQ(kStateDim, Summary::kNumFields * Summary::kNumFields);
}

}  // namespace
}  // namespace fastft
