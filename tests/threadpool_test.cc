// Tests for the shared fork-join thread pool behind parallel evaluation.

#include "common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fastft {
namespace common {
namespace {

TEST(ResolveThreadCountTest, ZeroMeansAllHardwareThreads) {
  int hw = ResolveThreadCount(0);
  EXPECT_GE(hw, 1);
}

TEST(ResolveThreadCountTest, PositiveRequestsPassThrough) {
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(4), 4);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const int64_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, n, 4, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A single-element range runs inline on the caller.
  pool.ParallelFor(7, 8, 4, [&](int64_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 4,
                       [&](int64_t i) {
                         if (i == 37) throw std::runtime_error("boom at 37");
                       }),
      std::runtime_error);
  // The pool stays usable after an exception: workers must have drained the
  // failed loop instead of wedging on its state.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 4, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, SubmitRunsTasksInFifoOrderOnOneWorker) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ReusableAcrossManyParallelForCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 64, 4, [&](int64_t i) { sum.fetch_add(i + round); });
    EXPECT_EQ(sum.load(), 63 * 64 / 2 + 64 * round);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // An inner ParallelFor issued from a worker thread must not queue onto the
  // same pool (classic fork-join deadlock); it runs inline instead.
  ThreadPool pool(2);
  std::atomic<int64_t> inner_total{0};
  pool.ParallelFor(0, 8, 4, [&](int64_t) {
    pool.ParallelFor(0, 8, 4, [&](int64_t j) { inner_total.fetch_add(j); });
  });
  EXPECT_EQ(inner_total.load(), 8 * (7 * 8 / 2));
}

TEST(ThreadPoolTest, FreeParallelForRunsSeriallyForOneThread) {
  // threads <= 1 must never touch the shared pool; the loop body runs on the
  // calling thread in index order.
  std::vector<int64_t> order;
  ParallelFor(0, 10, 1, [&](int64_t i) { order.push_back(i); });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, FreeParallelForCoversRangeWithManyThreads) {
  const int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ParallelFor(0, n, 4, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 0);
}

}  // namespace
}  // namespace common
}  // namespace fastft
