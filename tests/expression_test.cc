// Tests for expression trees and the tokenizer.

#include <gtest/gtest.h>

#include <set>

#include "core/expression.h"
#include "core/tokenizer.h"

namespace fastft {
namespace {

TEST(ExpressionTest, LeafProperties) {
  ExprPtr leaf = MakeLeaf(3);
  EXPECT_TRUE(IsLeaf(leaf));
  EXPECT_EQ(leaf->feature, 3);
  EXPECT_EQ(leaf->depth, 1);
  EXPECT_EQ(leaf->node_count, 1);
  EXPECT_EQ(ExprToString(leaf), "f3");
}

TEST(ExpressionTest, NamedLeaves) {
  ExprPtr leaf = MakeLeaf(1);
  EXPECT_EQ(ExprToString(leaf, {"age", "weight"}), "weight");
}

TEST(ExpressionTest, UnaryAndBinaryComposition) {
  ExprPtr expr = MakeBinary(OpType::kMul, MakeUnary(OpType::kSqrtAbs,
                                                    MakeLeaf(0)),
                            MakeLeaf(1));
  EXPECT_FALSE(IsLeaf(expr));
  EXPECT_EQ(expr->depth, 3);
  EXPECT_EQ(expr->node_count, 4);
  EXPECT_EQ(ExprToString(expr), "(sqrt(f0)*f1)");
}

TEST(ExpressionTest, EvalMatchesManualComputation) {
  std::vector<std::vector<double>> cols = {{1, 4, 9}, {2, 2, 2}};
  ExprPtr expr = MakeBinary(OpType::kAdd, MakeUnary(OpType::kSqrtAbs,
                                                    MakeLeaf(0)),
                            MakeLeaf(1));
  std::vector<double> v = EvalExpr(expr, cols);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 4.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(ExpressionTest, HashDistinguishesStructure) {
  ExprPtr a = MakeBinary(OpType::kSub, MakeLeaf(0), MakeLeaf(1));
  ExprPtr b = MakeBinary(OpType::kSub, MakeLeaf(1), MakeLeaf(0));
  ExprPtr c = MakeBinary(OpType::kSub, MakeLeaf(0), MakeLeaf(1));
  EXPECT_NE(ExprHash(a), ExprHash(b));  // order-sensitive
  EXPECT_EQ(ExprHash(a), ExprHash(c));  // structural equality
  EXPECT_NE(ExprHash(a), ExprHash(MakeLeaf(0)));
}

TEST(ExpressionTest, HashDistinguishesOps) {
  ExprPtr add = MakeBinary(OpType::kAdd, MakeLeaf(0), MakeLeaf(1));
  ExprPtr mul = MakeBinary(OpType::kMul, MakeLeaf(0), MakeLeaf(1));
  EXPECT_NE(ExprHash(add), ExprHash(mul));
}

TEST(ExpressionTest, PostfixOrdering) {
  // (f0 + f1) * sqrt(f2) → postfix: f0 f1 + f2 sqrt *
  ExprPtr expr = MakeBinary(
      OpType::kMul, MakeBinary(OpType::kAdd, MakeLeaf(0), MakeLeaf(1)),
      MakeUnary(OpType::kSqrtAbs, MakeLeaf(2)));
  std::vector<PostfixItem> items;
  AppendPostfix(expr, &items);
  ASSERT_EQ(items.size(), 6u);
  EXPECT_FALSE(items[0].is_op);
  EXPECT_EQ(items[0].index, 0);
  EXPECT_TRUE(items[2].is_op);
  EXPECT_EQ(items[2].index, static_cast<int>(OpType::kAdd));
  EXPECT_TRUE(items[5].is_op);
  EXPECT_EQ(items[5].index, static_cast<int>(OpType::kMul));
}

TEST(TokenizerTest, SpecialsReserved) {
  Tokenizer tok;
  EXPECT_EQ(Tokenizer::kPad, 0);
  EXPECT_LT(Tokenizer::kSep, Tokenizer::kNumSpecials);
  EXPECT_GE(tok.OpToken(0), Tokenizer::kNumSpecials);
  EXPECT_GE(tok.FeatureToken(0), Tokenizer::kNumSpecials + kNumOperations);
  EXPECT_LT(tok.FeatureToken(47), tok.vocab_size());
}

TEST(TokenizerTest, FeatureBucketsFold) {
  Tokenizer tok(/*feature_buckets=*/8);
  EXPECT_EQ(tok.FeatureToken(0), tok.FeatureToken(8));
  EXPECT_NE(tok.FeatureToken(0), tok.FeatureToken(7));
}

TEST(TokenizerTest, EncodeExprMapsPostfix) {
  Tokenizer tok;
  ExprPtr expr = MakeBinary(OpType::kAdd, MakeLeaf(0), MakeLeaf(1));
  std::vector<int> tokens = tok.EncodeExpr(expr);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], tok.FeatureToken(0));
  EXPECT_EQ(tokens[1], tok.FeatureToken(1));
  EXPECT_EQ(tokens[2], tok.OpToken(static_cast<int>(OpType::kAdd)));
}

TEST(TokenizerTest, FeatureSetFraming) {
  Tokenizer tok;
  std::vector<ExprPtr> exprs = {MakeLeaf(0),
                                MakeUnary(OpType::kSquare, MakeLeaf(1))};
  std::vector<int> tokens = tok.EncodeFeatureSet(exprs);
  EXPECT_EQ(tokens.front(), Tokenizer::kBos);
  EXPECT_EQ(tokens.back(), Tokenizer::kEos);
  int seps = 0;
  for (int t : tokens) seps += (t == Tokenizer::kSep);
  EXPECT_EQ(seps, 1);
}

TEST(TokenizerTest, EmptySetIsBosEos) {
  Tokenizer tok;
  std::vector<int> tokens = tok.EncodeFeatureSet({});
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], Tokenizer::kBos);
  EXPECT_EQ(tokens[1], Tokenizer::kEos);
}

TEST(TokenizerTest, TruncatesToMaxLength) {
  Tokenizer tok(/*feature_buckets=*/8, /*max_length=*/16);
  std::vector<ExprPtr> exprs;
  ExprPtr big = MakeLeaf(0);
  for (int i = 0; i < 40; ++i) {
    big = MakeBinary(OpType::kAdd, big, MakeLeaf(i % 8));
  }
  exprs.push_back(big);
  exprs.push_back(big);
  std::vector<int> tokens = tok.EncodeFeatureSet(exprs);
  EXPECT_LE(static_cast<int>(tokens.size()), 16);
  EXPECT_EQ(tokens.back(), Tokenizer::kEos);
}

TEST(TokenizerTest, AllTokensWithinVocab) {
  Tokenizer tok(8, 64);
  std::vector<ExprPtr> exprs = {
      MakeBinary(OpType::kDiv, MakeUnary(OpType::kLog1pAbs, MakeLeaf(13)),
                 MakeLeaf(29))};
  for (int t : tok.EncodeFeatureSet(exprs)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, tok.vocab_size());
  }
}

}  // namespace
}  // namespace fastft
