// Tests for train/test splitting and k-fold generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/split.h"
#include "data/synthetic.h"

namespace fastft {
namespace {

Dataset SmallClassification() {
  SyntheticSpec spec;
  spec.samples = 100;
  spec.features = 5;
  spec.classes = 3;
  spec.seed = 5;
  return MakeClassification(spec);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  Dataset ds = SmallClassification();
  TrainTestIndices split = TrainTestSplit(ds, 0.25, 42);
  std::set<int> all(split.train.begin(), split.train.end());
  for (int t : split.test) {
    EXPECT_EQ(all.count(t), 0u);
    all.insert(t);
  }
  EXPECT_EQ(static_cast<int>(all.size()), ds.NumRows());
}

TEST(SplitTest, TestFractionApproximate) {
  Dataset ds = SmallClassification();
  TrainTestIndices split = TrainTestSplit(ds, 0.2, 42);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / ds.NumRows(), 0.2,
              0.08);
}

TEST(SplitTest, StratificationKeepsAllClassesInTrain) {
  Dataset ds = SmallClassification();
  TrainTestIndices split = TrainTestSplit(ds, 0.3, 7);
  std::set<int> train_classes, test_classes;
  for (int i : split.train) train_classes.insert((int)ds.labels[i]);
  for (int i : split.test) test_classes.insert((int)ds.labels[i]);
  EXPECT_EQ(train_classes.size(), 3u);
  EXPECT_EQ(test_classes.size(), 3u);
}

TEST(SplitTest, DeterministicGivenSeed) {
  Dataset ds = SmallClassification();
  TrainTestIndices a = TrainTestSplit(ds, 0.25, 99);
  TrainTestIndices b = TrainTestSplit(ds, 0.25, 99);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  TrainTestIndices c = TrainTestSplit(ds, 0.25, 100);
  EXPECT_NE(a.test, c.test);
}

class KFoldParamTest : public testing::TestWithParam<int> {};

TEST_P(KFoldParamTest, FoldsPartitionRows) {
  const int folds = GetParam();
  Dataset ds = SmallClassification();
  auto splits = KFoldSplit(ds, folds, 31);
  ASSERT_EQ(static_cast<int>(splits.size()), folds);
  std::set<int> covered;
  for (const auto& split : splits) {
    EXPECT_EQ(static_cast<int>(split.train.size() + split.test.size()),
              ds.NumRows());
    for (int t : split.test) {
      EXPECT_EQ(covered.count(t), 0u) << "row in two test folds";
      covered.insert(t);
    }
    // Train and test disjoint within a fold.
    std::set<int> train(split.train.begin(), split.train.end());
    for (int t : split.test) EXPECT_EQ(train.count(t), 0u);
  }
  EXPECT_EQ(static_cast<int>(covered.size()), ds.NumRows());
}

INSTANTIATE_TEST_SUITE_P(Folds, KFoldParamTest, testing::Values(2, 3, 5, 10));

TEST(SplitTest, MaterializeSplitShapes) {
  Dataset ds = SmallClassification();
  TrainTestIndices split = TrainTestSplit(ds, 0.25, 3);
  TrainTestData data = MaterializeSplit(ds, split);
  EXPECT_EQ(data.train.NumRows(), static_cast<int>(split.train.size()));
  EXPECT_EQ(data.test.NumRows(), static_cast<int>(split.test.size()));
  EXPECT_EQ(data.train.NumFeatures(), ds.NumFeatures());
  EXPECT_EQ(data.train.task, ds.task);
  // Labels follow rows.
  for (size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_DOUBLE_EQ(data.test.labels[i], ds.labels[split.test[i]]);
  }
}

TEST(SplitTest, RegressionSplitWorks) {
  SyntheticSpec spec;
  spec.samples = 60;
  spec.features = 4;
  Dataset ds = MakeRegression(spec);
  TrainTestIndices split = TrainTestSplit(ds, 0.25, 1);
  EXPECT_GT(split.test.size(), 0u);
  EXPECT_GT(split.train.size(), split.test.size());
}

}  // namespace
}  // namespace fastft
