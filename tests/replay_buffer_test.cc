// Tests for the prioritized replay buffer (Eq. 10).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <set>

#include "common/rng.h"
#include "common/serial.h"
#include "core/agents.h"
#include "core/replay_buffer.h"
#include "core/state.h"

namespace fastft {
namespace {

Transition MakeTransition(double reward) {
  Transition t;
  t.reward = reward;
  t.performance = reward;
  t.tokens = {1, 2, 3};
  return t;
}

TEST(ReplayBufferTest, FillsToCapacity) {
  PrioritizedReplayBuffer buffer(4);
  EXPECT_EQ(buffer.capacity(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(buffer.Full());
    buffer.Add(MakeTransition(i), 1.0);
  }
  EXPECT_TRUE(buffer.Full());
  EXPECT_EQ(buffer.size(), 4);
}

TEST(ReplayBufferTest, EvictsOldestWhenFull) {
  PrioritizedReplayBuffer buffer(3);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeTransition(i), 1.0);
  buffer.Add(MakeTransition(99), 1.0);  // replaces slot 0 (oldest)
  EXPECT_EQ(buffer.size(), 3);
  EXPECT_DOUBLE_EQ(buffer.Get(0).reward, 99.0);
  EXPECT_DOUBLE_EQ(buffer.Get(1).reward, 1.0);
}

TEST(ReplayBufferTest, PrioritySamplingFavorsHighTd) {
  PrioritizedReplayBuffer buffer(4);
  buffer.Add(MakeTransition(0), 0.001);
  buffer.Add(MakeTransition(1), 0.001);
  buffer.Add(MakeTransition(2), 10.0);
  buffer.Add(MakeTransition(3), 0.001);
  Rng rng(5);
  int hits = 0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    hits += (buffer.SampleIndex(&rng, /*prioritized=*/true) == 2);
  }
  EXPECT_GT(hits, draws * 0.9);
}

TEST(ReplayBufferTest, UniformSamplingIgnoresPriority) {
  PrioritizedReplayBuffer buffer(4);
  buffer.Add(MakeTransition(0), 0.001);
  buffer.Add(MakeTransition(1), 100.0);
  buffer.Add(MakeTransition(2), 0.001);
  buffer.Add(MakeTransition(3), 0.001);
  Rng rng(6);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[buffer.SampleIndex(&rng, /*prioritized=*/false)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(ReplayBufferTest, NegativePrioritiesUseMagnitude) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0), -10.0);  // |.| = 10
  buffer.Add(MakeTransition(1), 0.001);
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 10.0);
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 1000; ++i) {
    hits += (buffer.SampleIndex(&rng, true) == 0);
  }
  EXPECT_GT(hits, 900);
}

TEST(ReplayBufferTest, ZeroPriorityFlooredNotDropped) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0), 0.0);
  EXPECT_GT(buffer.Priority(0), 0.0);
}

TEST(ReplayBufferTest, UpdatePriorityChangesSampling) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0), 5.0);
  buffer.Add(MakeTransition(1), 5.0);
  buffer.UpdatePriority(0, 0.0001);
  Rng rng(8);
  int hits1 = 0;
  for (int i = 0; i < 1000; ++i) hits1 += (buffer.SampleIndex(&rng, true) == 1);
  EXPECT_GT(hits1, 900);
}

TEST(ReplayBufferTest, UniformSampleIndicesDistinct) {
  PrioritizedReplayBuffer buffer(8);
  for (int i = 0; i < 8; ++i) buffer.Add(MakeTransition(i), 1.0);
  Rng rng(9);
  std::vector<int> sample = buffer.UniformSampleIndices(5, &rng);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
  // Requesting more than size clamps.
  EXPECT_EQ(buffer.UniformSampleIndices(100, &rng).size(), 8u);
}

TEST(ReplayBufferTest, GetMutableAllowsPerformanceUpdate) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(1.5), 1.0);
  buffer.GetMutable(0).performance = 2.5;
  EXPECT_DOUBLE_EQ(buffer.Get(0).performance, 2.5);
}

TEST(ReplayBufferTest, CapacityOneAlwaysHoldsNewest) {
  PrioritizedReplayBuffer buffer(1);
  EXPECT_EQ(buffer.capacity(), 1);
  for (int i = 0; i < 5; ++i) {
    buffer.Add(MakeTransition(i), 1.0 + i);
    EXPECT_EQ(buffer.size(), 1);
    EXPECT_DOUBLE_EQ(buffer.Get(0).reward, static_cast<double>(i));
  }
  Rng rng(3);
  // The single slot is the only possible draw, prioritized or not.
  EXPECT_EQ(buffer.SampleIndex(&rng, true), 0);
  EXPECT_EQ(buffer.SampleIndex(&rng, false), 0);
  EXPECT_EQ(buffer.UniformSampleIndices(4, &rng).size(), 1u);
}

TEST(ReplayBufferTest, AllZeroPrioritiesStillSampleEverySlot) {
  PrioritizedReplayBuffer buffer(3);
  for (int i = 0; i < 3; ++i) buffer.Add(MakeTransition(i), 0.0);
  Rng rng(4);
  std::set<int> seen;
  for (int i = 0; i < 600; ++i) seen.insert(buffer.SampleIndex(&rng, true));
  // The priority floor keeps zero-TD transitions reachable (no div-by-zero,
  // no starved slot).
  EXPECT_EQ(seen.size(), 3u);
}

TEST(ReplayBufferTest, SamplingMoreThanStoredClampsToSize) {
  PrioritizedReplayBuffer buffer(8);
  buffer.Add(MakeTransition(0), 1.0);
  buffer.Add(MakeTransition(1), 1.0);
  Rng rng(5);
  std::vector<int> sample = buffer.UniformSampleIndices(100, &rng);
  EXPECT_EQ(sample.size(), 2u);  // only 2 of 8 slots are filled
  for (int idx : sample) EXPECT_LT(idx, buffer.size());
}

TEST(ReplayBufferTest, EvictionReplacesStalePriority) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0), 100.0);
  buffer.Add(MakeTransition(1), 1.0);
  buffer.UpdatePriority(0, 50.0);
  // Slot 0 is the oldest; the next Add overwrites both its transition and
  // its (updated) priority.
  buffer.Add(MakeTransition(2), 2.0);
  EXPECT_DOUBLE_EQ(buffer.Get(0).reward, 2.0);
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 2.0);
  // Priority updates after the eviction target the new occupant.
  buffer.UpdatePriority(0, 7.0);
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 7.0);
  EXPECT_DOUBLE_EQ(buffer.Priority(1), 1.0);
}

TEST(ReplayBufferDeathTest, OutOfRangeAccessChecks) {
  PrioritizedReplayBuffer buffer(2);
  buffer.Add(MakeTransition(0), 1.0);
  EXPECT_DEATH(buffer.Get(5), "Check failed");
}

TEST(ReplayBufferTest, NonFinitePrioritiesFloorToMinimum) {
  // std::max(std::abs(NaN), floor) is NaN — a NaN TD error used to poison
  // the priority vector and crash SampleDiscrete's non-negative check.
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  PrioritizedReplayBuffer buffer(4);
  buffer.Add(MakeTransition(0), kNaN);
  buffer.Add(MakeTransition(1), kInf);
  buffer.Add(MakeTransition(2), -kInf);
  buffer.Add(MakeTransition(3), 1.0);
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 1e-4);
  EXPECT_DOUBLE_EQ(buffer.Priority(1), 1e-4);
  EXPECT_DOUBLE_EQ(buffer.Priority(2), 1e-4);
  EXPECT_DOUBLE_EQ(buffer.Priority(3), 1.0);

  buffer.UpdatePriority(3, kNaN);
  EXPECT_DOUBLE_EQ(buffer.Priority(3), 1e-4);

  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const int idx = buffer.SampleIndex(&rng, /*prioritized=*/true);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, buffer.size());
  }
}

TEST(ReplayBufferTest, NanRewardThroughPolicyPriorityPathStaysSampleable) {
  // The engine's priority path verbatim: priority = policy->TdError(t),
  // then Add + prioritized SampleIndex + UpdatePriority. A NaN reward makes
  // the TD error NaN; sampling must survive it.
  AgentConfig config;
  CascadingAgents policy(config);
  Transition t = MakeTransition(0.0);
  t.reward = std::numeric_limits<double>::quiet_NaN();
  t.state.assign(kStateDim, 0.25);
  t.next_state.assign(kStateDim, 0.5);
  const double priority = policy.TdError(t);
  ASSERT_TRUE(std::isnan(priority));

  PrioritizedReplayBuffer buffer(4);
  buffer.Add(std::move(t), priority);
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 1e-4);
  Rng rng(23);
  const int index = buffer.SampleIndex(&rng, /*prioritized=*/true);
  EXPECT_EQ(index, 0);
  buffer.UpdatePriority(index, policy.TdError(buffer.Get(index)));
  EXPECT_DOUBLE_EQ(buffer.Priority(0), 1e-4);
}

TEST(ReplayBufferTest, LoadStateRejectsOverflowingMatrixHeader) {
  // A 2^31 x 2^31 matrix header makes rows * cols * sizeof(double) wrap to
  // zero in u64, so the remaining() bound check used to pass and the int
  // casts handed the Matrix ctor negative dimensions. The dimension cap must
  // fail the read cleanly instead.
  PrioritizedReplayBuffer buffer(4);
  buffer.Add(MakeTransition(1.0), 1.0);
  common::BinaryWriter w;
  buffer.SaveState(&w);

  std::string payload = w.buffer();
  // Layout: capacity u32, count u32, next_slot u32, then the first
  // transition's head_inputs matrix header (rows u32, cols u32).
  ASSERT_GE(payload.size(), 20u);
  const uint32_t huge = 1u << 31;
  std::memcpy(payload.data() + 12, &huge, sizeof(huge));
  std::memcpy(payload.data() + 16, &huge, sizeof(huge));

  PrioritizedReplayBuffer restored(4);
  common::BinaryReader r(payload);
  restored.LoadState(&r);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("matrix shape"), std::string::npos)
      << r.status().ToString();
  // The failed load must leave the target buffer untouched.
  EXPECT_EQ(restored.size(), 0);
}

}  // namespace
}  // namespace fastft
