// Quickstart: run FastFT end-to-end on one dataset and inspect the result.
//
//   $ ./quickstart [dataset-name]
//
// Loads a dataset from the built-in zoo (default: "Pima Indian"), runs the
// FastFT engine, and prints the downstream improvement plus the traceable
// expressions of the generated features.

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "data/dataset_zoo.h"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "Pima Indian";

  fastft::Result<fastft::Dataset> loaded = fastft::LoadZooDataset(name);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    std::fprintf(stderr, "available datasets:\n");
    for (const fastft::ZooEntry& e : fastft::AllZooEntries()) {
      std::fprintf(stderr, "  %s\n", e.name.c_str());
    }
    return 1;
  }
  fastft::Dataset dataset = std::move(loaded).ValueOrDie();
  std::printf("dataset %-18s task=%s rows=%d features=%d\n",
              dataset.name.c_str(), fastft::TaskTypeCode(dataset.task),
              dataset.NumRows(), dataset.NumFeatures());

  // Default configuration: a short cold start followed by predictor-driven
  // exploration with novelty-shaped rewards.
  fastft::EngineConfig config;
  config.episodes = 10;
  config.steps_per_episode = 8;
  config.cold_start_episodes = 3;
  config.seed = 7;
  // Fan downstream evaluation out over every hardware thread. Scores are
  // bit-identical to a serial run (num_threads = 1); only the wall clock
  // changes.
  config.num_threads = 0;

  fastft::FastFtEngine engine(config);
  // Run returns Result<EngineResult>: invalid datasets or configs come back
  // as a Status instead of aborting the process.
  fastft::Result<fastft::EngineResult> run = engine.Run(dataset);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  fastft::EngineResult result = std::move(run).ValueOrDie();

  std::printf("\nbase score  : %.4f\n", result.base_score);
  std::printf("best score  : %.4f  (+%.4f)\n", result.best_score,
              result.best_score - result.base_score);
  std::printf("downstream evaluations : %lld\n",
              static_cast<long long>(result.downstream_evaluations));
  std::printf("predictor estimations  : %lld\n",
              static_cast<long long>(result.predictor_estimations));
  std::printf("time: evaluation=%.2fs estimation=%.2fs optimization=%.2fs\n",
              result.times.Get("evaluation"), result.times.Get("estimation"),
              result.times.Get("optimization"));

  std::printf("\nbest transformed feature set (%d columns):\n",
              result.best_dataset.NumFeatures());
  int shown = 0;
  for (int c = dataset.NumFeatures();
       c < result.best_dataset.NumFeatures() && shown < 10; ++c, ++shown) {
    std::printf("  %s\n", result.best_dataset.features.Name(c).c_str());
  }
  if (result.best_dataset.NumFeatures() == dataset.NumFeatures()) {
    std::printf("  (the original features were already optimal this run)\n");
  }
  return 0;
}
