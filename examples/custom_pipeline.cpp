// Composing the lower-level building blocks directly (no engine).
//
// Shows the library's layered API: FeatureSpace crossing, MI clustering,
// state representation, tokenization, and a hand-driven Performance
// Predictor — the pieces FastFtEngine wires together — plus CSV export of
// the final dataset.

#include <cstdio>

#include "common/rng.h"
#include "core/clustering.h"
#include "core/feature_space.h"
#include "core/performance_predictor.h"
#include "core/state.h"
#include "core/tokenizer.h"
#include "data/csv.h"
#include "data/dataset_zoo.h"
#include "ml/evaluator.h"

int main() {
  fastft::Dataset dataset = fastft::LoadZooDataset("SVMGuide3").ValueOrDie();
  fastft::Evaluator evaluator;
  fastft::Rng rng(5);

  // 1. A FeatureSpace holds the evolving transformed feature set.
  fastft::FeatureSpaceConfig fs_config;
  fs_config.max_features = dataset.NumFeatures() + 24;
  fastft::FeatureSpace space(dataset, fs_config);
  std::printf("start: %d columns, downstream score %.4f\n",
              space.NumColumns(), evaluator.Evaluate(dataset));

  // 2. Cluster features by the Eq. 2 MI distance.
  std::vector<std::vector<int>> clusters = fastft::ClusterFeatures(space);
  std::printf("clustered %d columns into %zu groups\n", space.NumColumns(),
              clusters.size());

  // 3. State representations (what the RL agents see).
  std::vector<double> overall = fastft::FeatureSetState(space);
  std::printf("Rep(F) is a %zu-dim statistics-of-statistics vector\n",
              overall.size());

  // 4. Manual group-wise crossings: multiply the two most label-relevant
  //    clusters, square the first.
  int added_mul = space.ApplyOperation(fastft::OpType::kMul, clusters[0],
                                       clusters.size() > 1 ? clusters[1]
                                                           : clusters[0],
                                       &rng);
  int added_sq =
      space.ApplyOperation(fastft::OpType::kSquare, clusters[0], {}, &rng);
  std::printf("crossings added %d product and %d square columns\n", added_mul,
              added_sq);

  // 5. The transformation sequence and a predictor trained on two points.
  fastft::Tokenizer tokenizer;
  std::vector<int> tokens = space.SequenceTokens(tokenizer);
  std::printf("transformation sequence has %zu tokens\n", tokens.size());

  double score = evaluator.Evaluate(space.ToDataset());
  std::printf("after crossing: %d columns, downstream score %.4f\n",
              space.NumColumns(), score);

  fastft::PredictorConfig pc;
  pc.vocab_size = tokenizer.vocab_size();
  fastft::PerformancePredictor predictor(pc);
  std::vector<fastft::SequenceRecord> records = {
      {tokenizer.EncodeFeatureSet({}), evaluator.Evaluate(dataset)},
      {tokens, score},
  };
  fastft::Rng train_rng(9);
  predictor.Fit(records, /*epochs=*/60, &train_rng);
  std::printf("predictor recall of the crossed sequence: %.4f (actual %.4f)\n",
              predictor.Predict(tokens), score);

  // 6. Export the transformed dataset.
  fastft::Dataset out = space.ToDataset();
  fastft::DataFrame frame = out.features;
  fastft::Status st = frame.AddColumn("label", out.labels);
  if (st.ok()) {
    std::string path = "/tmp/fastft_custom_pipeline.csv";
    st = fastft::WriteCsvFile(frame, path);
    if (st.ok()) std::printf("wrote transformed dataset to %s\n", path.c_str());
  }
  if (!st.ok()) std::printf("export failed: %s\n", st.ToString().c_str());
  return 0;
}
