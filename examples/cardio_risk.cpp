// Cardiovascular-risk scenario (the paper's Fig. 15 case study, §VII-B).
//
// Builds a synthetic cardiovascular dataset where the risk depends on latent
// interactions between lifestyle and medical indicators (e.g. a weight /
// (activity × blood-pressure) style ratio), runs FastFT, and prints the
// reward trace with the interpretable feature generated at each reward peak.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/engine.h"
#include "data/dataset.h"

namespace {

// Hand-built cardio-like dataset: named columns, interaction-driven label.
fastft::Dataset MakeCardioDataset(int samples, uint64_t seed) {
  fastft::Rng rng(seed);
  std::vector<double> age(samples), weight(samples), height(samples),
      sbp(samples), dbp(samples), active(samples), smoke(samples),
      chol(samples);
  std::vector<double> label(samples);
  for (int i = 0; i < samples; ++i) {
    age[i] = rng.Uniform(30, 75);
    height[i] = rng.Normal(170, 9);
    weight[i] = rng.Normal(78, 14);
    active[i] = rng.Uniform(0.2, 3.0);           // activity level
    dbp[i] = 70 + 0.3 * (weight[i] - 78) - 4.0 * (active[i] - 1.5) +
             rng.Normal(0, 6);
    sbp[i] = dbp[i] + rng.Uniform(30, 50);
    smoke[i] = rng.Bernoulli(0.25) ? 1.0 : 0.0;
    chol[i] = rng.Normal(5.2, 1.0);
    // Risk driven by interactions: abnormal DBP relative to weight/activity,
    // BMI, and smoking × cholesterol.
    double bmi = weight[i] / ((height[i] / 100) * (height[i] / 100));
    double dbp_anomaly = dbp[i] * active[i] / weight[i];
    double risk = 0.08 * (age[i] - 50) + 1.3 * (bmi - 26) / 5 +
                  2.2 * (dbp_anomaly - 1.3) + 0.9 * smoke[i] * (chol[i] - 5) +
                  rng.Normal(0, 0.7);
    label[i] = risk > 0 ? 1.0 : 0.0;
  }
  fastft::Dataset ds;
  ds.name = "CardioRisk";
  ds.task = fastft::TaskType::kClassification;
  auto add = [&](const char* name, std::vector<double> col) {
    FASTFT_CHECK(ds.features.AddColumn(name, std::move(col)).ok());
  };
  add("Age", age);
  add("Weight", weight);
  add("Height", height);
  add("SBP", sbp);
  add("DBP", dbp);
  add("Active", active);
  add("Smoke", smoke);
  add("Chol", chol);
  ds.labels = std::move(label);
  return ds;
}

}  // namespace

int main() {
  fastft::Dataset dataset = MakeCardioDataset(500, 11);
  std::printf("CardioRisk: %d patients, %d indicators\n", dataset.NumRows(),
              dataset.NumFeatures());

  fastft::EngineConfig config;
  config.episodes = 10;
  config.steps_per_episode = 8;
  config.cold_start_episodes = 3;
  config.seed = 23;
  fastft::FastFtEngine engine(config);
  fastft::EngineResult result = engine.Run(dataset).ValueOrDie();

  std::printf("base F1 %.4f → best F1 %.4f\n\n", result.base_score,
              result.best_score);

  // Reward peaks and their features — the Fig. 15 story: each peak is a
  // traceable expression a domain expert can read.
  std::printf("reward peaks and the features discovered there:\n");
  double best_reward = -1e300;
  for (const fastft::StepTrace& t : result.trace) {
    if (t.reward > best_reward && !t.top_new_feature.empty()) {
      best_reward = t.reward;
      std::printf("  episode %2d step %d  reward %+.4f  %s\n", t.episode,
                  t.step, t.reward, t.top_new_feature.c_str());
    }
  }

  std::printf("\ntop generated features of the best dataset:\n");
  for (int c = dataset.NumFeatures();
       c < std::min(result.best_dataset.NumFeatures(),
                    dataset.NumFeatures() + 8);
       ++c) {
    std::printf("  %s\n", result.best_dataset.features.Name(c).c_str());
  }
  std::printf(
      "\ninterpretation: ratios such as Weight/(Active*DBP) flag blood\n"
      "pressure values that deviate from the level expected for a patient's\n"
      "weight and activity — exactly the traceable-feature story of the\n"
      "paper's case study.\n");
  return 0;
}
