// Credit-scoring scenario: FastFT vs. representative baselines, and the
// robustness of the generated features across downstream model families
// (the paper's Table III study on German Credit).

#include <cstdio>
#include <memory>

#include "baselines/baseline.h"
#include "core/engine.h"
#include "data/dataset_zoo.h"
#include "ml/evaluator.h"

int main() {
  fastft::Dataset dataset =
      fastft::LoadZooDataset("German Credit").ValueOrDie();
  std::printf("German Credit counterpart: %d applicants, %d attributes\n\n",
              dataset.NumRows(), dataset.NumFeatures());

  // --- FastFT ---
  fastft::EngineConfig config;
  config.episodes = 10;
  config.steps_per_episode = 8;
  config.cold_start_episodes = 3;
  config.seed = 31;
  fastft::FastFtEngine engine(config);
  fastft::EngineResult fastft_result = engine.Run(dataset).ValueOrDie();
  std::printf("%-8s F1 %.4f  (base %.4f, %lld downstream evals)\n", "FastFT",
              fastft_result.best_score, fastft_result.base_score,
              static_cast<long long>(fastft_result.downstream_evaluations));

  // --- A few baselines for comparison ---
  fastft::BaselineConfig bc;
  bc.seed = 31;
  for (const char* name : {"RFG", "AFT", "OpenFE", "GRFG"}) {
    std::unique_ptr<fastft::Baseline> baseline =
        fastft::MakeBaseline(name, bc);
    fastft::BaselineResult r = baseline->Run(dataset);
    std::printf("%-8s F1 %.4f  (%.1fs, %lld downstream evals)\n", name,
                r.score, r.runtime_seconds,
                static_cast<long long>(r.downstream_evaluations));
  }

  // --- Robustness: evaluate FastFT's transformed dataset under six
  //     downstream model families (Table III). ---
  std::printf("\nrobustness of the FastFT feature set across models:\n");
  const fastft::ModelKind kinds[] = {
      fastft::ModelKind::kRandomForest,  fastft::ModelKind::kGradientBoosting,
      fastft::ModelKind::kLogisticRegression, fastft::ModelKind::kLinearSvm,
      fastft::ModelKind::kRidge,         fastft::ModelKind::kDecisionTree};
  for (fastft::ModelKind kind : kinds) {
    fastft::EvaluatorConfig ec;
    ec.model = kind;
    fastft::Evaluator evaluator(ec);
    double base = evaluator.Evaluate(dataset);
    double transformed = evaluator.Evaluate(fastft_result.best_dataset);
    std::printf("  %-8s base %.4f → transformed %.4f (%+.4f)\n",
                fastft::ModelKindName(kind), base, transformed,
                transformed - base);
  }
  return 0;
}
