// Anomaly-detection scenario: recovering a broken interaction constraint.
//
// The synthetic detection generator couples columns through a product
// constraint (x_k ≈ x_i * x_j for inliers); anomalies break the constraint
// while every marginal stays in-distribution. Raw features are therefore
// nearly useless and the detector must *construct* the interaction — which
// is what FastFT's crossing search does.

#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "core/mutual_information.h"
#include "data/synthetic.h"

int main() {
  fastft::SyntheticSpec spec;
  spec.samples = 500;
  spec.features = 6;
  spec.informative = 6;
  spec.anomaly_rate = 0.12;
  spec.label_noise = 0.01;
  spec.seed = 17;
  fastft::Dataset dataset = fastft::MakeDetection(spec);
  dataset.name = "SensorAnomalies";

  std::printf("SensorAnomalies: %d readings, %d channels, %.0f%% anomalies\n",
              dataset.NumRows(), dataset.NumFeatures(),
              100.0 * spec.anomaly_rate);

  // How informative are the raw channels? (MI with the anomaly flag.)
  std::printf("\nraw channel relevance (MI with label):\n");
  std::vector<double> relevance = fastft::FeatureRelevance(
      dataset.features, dataset.labels, dataset.task);
  for (int c = 0; c < dataset.NumFeatures(); ++c) {
    std::printf("  %-4s %.4f\n", dataset.features.Name(c).c_str(),
                relevance[c]);
  }

  fastft::EngineConfig config;
  config.episodes = 12;
  config.steps_per_episode = 8;
  config.cold_start_episodes = 3;
  config.seed = 91;
  fastft::FastFtEngine engine(config);
  fastft::EngineResult result = engine.Run(dataset).ValueOrDie();

  std::printf("\nbase AUC %.4f → best AUC %.4f\n", result.base_score,
              result.best_score);

  std::printf("\nmost relevant generated features:\n");
  std::vector<double> transformed_relevance = fastft::FeatureRelevance(
      result.best_dataset.features, result.best_dataset.labels,
      result.best_dataset.task);
  // Print generated columns sorted by relevance.
  struct Entry {
    double rel;
    int col;
  };
  std::vector<Entry> entries;
  for (int c = dataset.NumFeatures(); c < result.best_dataset.NumFeatures();
       ++c) {
    entries.push_back({transformed_relevance[c], c});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.rel > b.rel; });
  for (size_t i = 0; i < entries.size() && i < 6; ++i) {
    std::printf("  MI %.4f  %s\n", entries[i].rel,
                result.best_dataset.features.Name(entries[i].col).c_str());
  }
  std::printf(
      "\nthe high-MI generated features are product/difference crossings —\n"
      "the reconstructed constraint that separates anomalies.\n");
  return 0;
}
