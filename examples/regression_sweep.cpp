// Regression workflow: transform several OpenML-style regression datasets,
// report 1-RAE gains, and persist the best transformation program.
//
// Demonstrates the train → save program → re-apply cycle on regression
// tasks (the paper's OpenML_xxx rows of Table I).

#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/expression_parser.h"
#include "data/dataset_zoo.h"

int main() {
  const char* names[] = {"OpenML_589", "OpenML_620", "OpenML_586"};

  double best_gain = -1.0;
  fastft::Dataset best_original;
  fastft::EngineResult best_result;

  std::printf("%-14s %8s %8s %8s %10s\n", "dataset", "base", "best", "gain",
              "features");
  for (const char* name : names) {
    fastft::Dataset dataset = fastft::LoadZooDataset(name).ValueOrDie();
    fastft::EngineConfig config;
    config.episodes = 10;
    config.steps_per_episode = 8;
    config.cold_start_episodes = 3;
    config.seed = 42;
    fastft::FastFtEngine engine(config);
    fastft::EngineResult result = engine.Run(dataset).ValueOrDie();
    double gain = result.best_score - result.base_score;
    std::printf("%-14s %8.4f %8.4f %+8.4f %6d->%d\n", name,
                result.base_score, result.best_score, gain,
                dataset.NumFeatures(), result.best_dataset.NumFeatures());
    if (gain > best_gain) {
      best_gain = gain;
      best_original = dataset;
      best_result = result;
    }
  }

  // Persist the most successful transformation as a program.
  std::vector<std::string> names_vec;
  for (int c = 0; c < best_original.NumFeatures(); ++c) {
    names_vec.push_back(best_original.features.Name(c));
  }
  fastft::Result<fastft::TransformationProgram> program =
      fastft::TransformationProgram::FromTransformedDataset(
          best_result.best_dataset, best_original.NumFeatures(), names_vec);
  if (!program.ok()) {
    std::fprintf(stderr, "program extraction failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  const std::string path = "/tmp/fastft_regression_program.txt";
  fastft::Status st = program.value().SaveToFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nbest transformation (%s, +%.4f 1-RAE) saved to %s:\n",
              best_original.name.c_str(), best_gain, path.c_str());
  int shown = 0;
  for (const fastft::ExprPtr& expr : program.value().expressions()) {
    if (++shown > 6) break;
    std::printf("  %s\n", fastft::ExprToString(expr).c_str());
  }
  std::printf(
      "\nre-apply it to fresh data with:\n"
      "  fastft apply --input new.csv --program %s\n",
      path.c_str());
  return 0;
}
